//! Generic forward/backward dataflow solver over the UDF [`Cfg`], plus the
//! three analyses the compiler uses: liveness, reaching definitions, and
//! constant propagation.
//!
//! The solver is a plain worklist fixpoint: facts form a join semilattice,
//! transfer functions are monotone, and the graphs are tiny (a UDF body is a
//! few dozen statements), so no acceleration is needed. Facts are recomputed
//! from the neighbouring nodes on every visit, which keeps the join logic
//! trivially correct in the presence of re-wired (pruned) graphs.
//!
//! **Termination.** The solver has no widening operator, so it terminates
//! only when the per-point fact lattice has finite ascending chains. That
//! holds for every analysis in this module — [`Liveness`] and
//! [`ReachingDefs`] range over finite sets of locals/definition sites, and
//! [`Const`] has height three per local (⊥ → `Val` → `NonConst`) even
//! though its *value* carrier is infinite. It does **not** hold for an
//! arbitrary [`Analysis`] implementation (an interval domain run through
//! this solver would climb forever on a counting loop —
//! [`crate::absint`] has its own widening for exactly that reason). The
//! solver therefore enforces a fuel bound: [`solve_with_fuel`] returns a
//! typed [`FuelExhausted`] error instead of hanging, and [`solve`] wraps it
//! with a generous bound that the finite-lattice analyses above can never
//! hit.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::cfg::{Cfg, NodeId, ENTRY, EXIT};
use crate::diag::StmtId;
use crate::types::Value;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from `Entry` towards `Exit` (reaching defs, const-prop).
    Forward,
    /// Facts flow from `Exit` towards `Entry` (liveness).
    Backward,
}

/// A dataflow analysis: a lattice of facts plus a transfer function.
pub trait Analysis {
    /// The lattice element attached to each program point.
    type Fact: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// Fact at the boundary node (`Entry` for forward, `Exit` for backward).
    fn boundary(&self) -> Self::Fact;

    /// Bottom element, the optimistic initial fact everywhere else.
    fn init(&self) -> Self::Fact;

    /// Least-upper-bound: fold `from` into `into`.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Transfer across `node`. For forward analyses maps the fact *before*
    /// the node to the fact *after* it; for backward analyses the reverse.
    fn transfer(&self, cfg: &Cfg<'_>, node: NodeId, fact: &Self::Fact) -> Self::Fact;
}

/// Per-node fixpoint facts, in *execution* order regardless of direction:
/// `before[n]` holds just before `n` runs, `after[n]` just after.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at the program point preceding each node.
    pub before: Vec<F>,
    /// Fact at the program point following each node.
    pub after: Vec<F>,
}

/// The worklist did not stabilise within its fuel bound.
///
/// Returned by [`solve_with_fuel`] when an [`Analysis`] whose lattice has
/// infinite (or merely very long) ascending chains keeps producing new
/// facts. The built-in analyses cannot trigger this; a custom domain that
/// needs widening (intervals, octagons, …) can — use [`crate::absint`]'s
/// dedicated solver for those.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuelExhausted {
    /// Node visits performed before giving up.
    pub fuel: usize,
}

impl fmt::Display for FuelExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dataflow worklist did not stabilise within {} node visits \
             (lattice with unbounded ascending chains? use a widening solver)",
            self.fuel
        )
    }
}

impl std::error::Error for FuelExhausted {}

/// Default fuel for [`solve`]: far above what any finite-lattice analysis
/// in this crate can consume. Each of the ≤ `2·locals·nodes` fact
/// changes re-queues at most the node's neighbours, so visits stay
/// polynomial in the (tiny) CFG size; `64·n² + 1024` leaves two orders
/// of magnitude of headroom.
fn default_fuel(node_count: usize) -> usize {
    1024 + 64 * node_count * node_count
}

/// Runs `analysis` over `cfg` to fixpoint.
///
/// # Panics
///
/// Panics if the internal fuel bound is exhausted — impossible for
/// analyses over finite lattices (all of this module's); use
/// [`solve_with_fuel`] directly when experimenting with domains that may
/// climb forever.
pub fn solve<A: Analysis>(cfg: &Cfg<'_>, analysis: &A) -> Solution<A::Fact> {
    solve_with_fuel(cfg, analysis, default_fuel(cfg.node_count()))
        .expect("finite-lattice dataflow analysis exhausted its fuel bound")
}

/// Runs `analysis` over `cfg` to fixpoint, spending at most `fuel` node
/// visits.
///
/// # Errors
///
/// Returns [`FuelExhausted`] when the worklist is still busy after `fuel`
/// visits — the typed alternative to non-termination for lattices without
/// finite ascending chains.
pub fn solve_with_fuel<A: Analysis>(
    cfg: &Cfg<'_>,
    analysis: &A,
    fuel: usize,
) -> Result<Solution<A::Fact>, FuelExhausted> {
    let n = cfg.node_count();
    let mut before = vec![analysis.init(); n];
    let mut after = vec![analysis.init(); n];
    let forward = analysis.direction() == Direction::Forward;
    let mut queue: VecDeque<NodeId> = (0..n).collect();
    let mut queued = vec![true; n];
    let mut spent = 0usize;
    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        if spent >= fuel {
            return Err(FuelExhausted { fuel });
        }
        spent += 1;
        if forward {
            let mut inb = if node == ENTRY {
                analysis.boundary()
            } else {
                analysis.init()
            };
            for &p in cfg.preds(node) {
                analysis.join(&mut inb, &after[p]);
            }
            before[node] = inb;
            let out = analysis.transfer(cfg, node, &before[node]);
            if out != after[node] {
                after[node] = out;
                for &s in cfg.succs(node) {
                    if !queued[s] {
                        queued[s] = true;
                        queue.push_back(s);
                    }
                }
            }
        } else {
            let mut aft = if node == EXIT {
                analysis.boundary()
            } else {
                analysis.init()
            };
            for &s in cfg.succs(node) {
                analysis.join(&mut aft, &before[s]);
            }
            after[node] = aft;
            let newb = analysis.transfer(cfg, node, &after[node]);
            if newb != before[node] {
                before[node] = newb;
                for &p in cfg.preds(node) {
                    if !queued[p] {
                        queued[p] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
    }
    Ok(Solution { before, after })
}

// ---------------------------------------------------------------------------
// Uses / defs
// ---------------------------------------------------------------------------

/// Collects the local variables read by `e` into `out`.
pub fn expr_uses(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Local(name) => {
            out.insert(name.clone());
        }
        Expr::Prop { index, .. } => expr_uses(index, out),
        Expr::Unary(_, a) => expr_uses(a, out),
        Expr::Binary(_, a, b) => {
            expr_uses(a, out);
            expr_uses(b, out);
        }
        Expr::Lit(_) | Expr::CurrentVertex | Expr::CurrentNeighbor => {}
    }
}

/// Local variables read directly by `s` (not by its nested statements —
/// those are separate CFG nodes).
pub fn stmt_uses(s: &Stmt) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match s {
        Stmt::Let { init, .. } => expr_uses(init, &mut out),
        Stmt::Assign { value, .. } => expr_uses(value, &mut out),
        Stmt::If { cond, .. } => expr_uses(cond, &mut out),
        Stmt::Emit(e) => expr_uses(e, &mut out),
        Stmt::ForNeighbors { .. }
        | Stmt::Break
        | Stmt::Return
        | Stmt::ReceiveDepGuard
        | Stmt::EmitDep => {}
    }
    out
}

/// The local variable written by `s`, if any.
pub fn stmt_def(s: &Stmt) -> Option<&str> {
    match s {
        Stmt::Let { name, .. } | Stmt::Assign { name, .. } => Some(name),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

/// Backward liveness. `exit_live` is the set of locals considered observed
/// at `Exit` — the carried-state analysis passes the syntactically carried
/// set there, because a no-break exit snapshots those locals onto the wire
/// (an *observation* the CFG cannot see).
pub struct Liveness {
    /// Locals live-out at `Exit`.
    pub exit_live: BTreeSet<String>,
}

impl Analysis for Liveness {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> Self::Fact {
        self.exit_live.clone()
    }

    fn init(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().cloned());
    }

    fn transfer(&self, cfg: &Cfg<'_>, node: NodeId, after: &Self::Fact) -> Self::Fact {
        let Some(id) = cfg.stmt_of(node) else {
            return after.clone();
        };
        let s = cfg.stmt(id);
        let mut live = after.clone();
        if let Some(name) = stmt_def(s) {
            live.remove(name);
        }
        live.extend(stmt_uses(s));
        live
    }
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// A definition site: which local, defined at which statement.
pub type Def = (String, StmtId);

/// Forward reaching definitions: the set of `(local, defining statement)`
/// pairs that may supply the local's value at a point. Run over
/// [`Cfg::prune_breaks`] this answers the carried-state question "can an
/// *assignment* to `x` still be the live definition at a no-break exit?".
pub struct ReachingDefs;

impl Analysis for ReachingDefs {
    type Fact = BTreeSet<Def>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn init(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().cloned());
    }

    fn transfer(&self, cfg: &Cfg<'_>, node: NodeId, before: &Self::Fact) -> Self::Fact {
        let Some(id) = cfg.stmt_of(node) else {
            return before.clone();
        };
        let s = cfg.stmt(id);
        let Some(name) = stmt_def(s) else {
            return before.clone();
        };
        let mut out: BTreeSet<Def> = before.iter().filter(|(n, _)| n != name).cloned().collect();
        out.insert((name.to_string(), id));
        out
    }
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

/// A constant-propagation lattice value for one local. The bottom element
/// ("no definition seen yet / unreachable") is represented by *absence* from
/// the fact map.
#[derive(Debug, Clone)]
pub enum Const {
    /// The local may hold more than one value here.
    NonConst,
    /// The local provably holds exactly this value here.
    Val(Value),
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Const::NonConst, Const::NonConst) => true,
            // Bit-compare so `NaN == NaN` holds and the fixpoint terminates.
            (Const::Val(a), Const::Val(b)) => a.ty() == b.ty() && a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

/// Forward constant propagation over the locals.
///
/// `untrusted_lets` names locals whose `let` initialiser must *not* be
/// trusted: the instrumentation rewrites carried locals' `let`s into wire
/// restores, so their run-time value is whatever the previous machine
/// shipped, not the initialiser. The carried-state analysis passes the
/// syntactically carried set here, which keeps every conclusion (notably
/// "this break is unreachable") valid for both the instrumented and the
/// uninstrumented program.
pub struct ConstProp {
    /// Locals whose `let` produces an unknown (restored) value.
    pub untrusted_lets: BTreeSet<String>,
}

impl Analysis for ConstProp {
    type Fact = BTreeMap<String, Const>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn init(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        for (name, v) in from {
            match into.get(name) {
                None => {
                    into.insert(name.clone(), v.clone());
                }
                Some(w) if w == v => {}
                Some(_) => {
                    into.insert(name.clone(), Const::NonConst);
                }
            }
        }
    }

    fn transfer(&self, cfg: &Cfg<'_>, node: NodeId, before: &Self::Fact) -> Self::Fact {
        let Some(id) = cfg.stmt_of(node) else {
            return before.clone();
        };
        let mut out = before.clone();
        match cfg.stmt(id) {
            Stmt::Let { name, init, .. } => {
                let c = if self.untrusted_lets.contains(name) {
                    Some(Const::NonConst)
                } else {
                    const_eval(init, before)
                };
                match c {
                    Some(c) => {
                        out.insert(name.clone(), c);
                    }
                    None => {
                        out.remove(name);
                    }
                }
            }
            Stmt::Assign { name, value } => match const_eval(value, before) {
                Some(c) => {
                    out.insert(name.clone(), c);
                }
                None => {
                    out.remove(name);
                }
            },
            _ => {}
        }
        out
    }
}

/// Evaluates `e` under the constant environment `env`.
///
/// Returns `None` for bottom (an operand with no definition on any path seen
/// so far), `Some(Const::Val(_))` when the value is provably fixed, and
/// `Some(Const::NonConst)` otherwise. Folding mirrors the interpreter
/// exactly — wrapping integer arithmetic, int-to-float widening, NaN-refusing
/// comparisons, short-circuit logic — so a folded constant can never disagree
/// with a run.
pub fn const_eval(e: &Expr, env: &BTreeMap<String, Const>) -> Option<Const> {
    match e {
        Expr::Lit(v) => Some(Const::Val(*v)),
        Expr::Local(name) => env.get(name).cloned(),
        Expr::Prop { .. } | Expr::CurrentVertex | Expr::CurrentNeighbor => Some(Const::NonConst),
        Expr::Unary(op, a) => {
            let v = match const_eval(a, env)? {
                Const::NonConst => return Some(Const::NonConst),
                Const::Val(v) => v,
            };
            Some(match (op, v) {
                (UnOp::Not, Value::Bool(b)) => Const::Val(Value::Bool(!b)),
                (UnOp::Neg, Value::Int(i)) => Const::Val(Value::Int(i.wrapping_neg())),
                (UnOp::Neg, Value::Float(f)) => Const::Val(Value::Float(-f)),
                _ => Const::NonConst,
            })
        }
        Expr::Binary(op, a, b) => const_eval_bin(*op, a, b, env),
    }
}

fn const_eval_bin(op: BinOp, a: &Expr, b: &Expr, env: &BTreeMap<String, Const>) -> Option<Const> {
    if matches!(op, BinOp::And | BinOp::Or) {
        let la = const_eval(a, env)?;
        // Short-circuit: a constant-false lhs decides `&&` (and true, `||`)
        // without looking right — same evaluation order as the interpreter.
        if let Const::Val(Value::Bool(x)) = la {
            if (op == BinOp::And && !x) || (op == BinOp::Or && x) {
                return Some(Const::Val(Value::Bool(x)));
            }
            return Some(match const_eval(b, env)? {
                Const::Val(Value::Bool(y)) => Const::Val(Value::Bool(y)),
                _ => Const::NonConst,
            });
        }
        // Unknown lhs: `x && false` is still false (operands are pure).
        return Some(match const_eval(b, env)? {
            Const::Val(Value::Bool(y)) if (op == BinOp::And) != y => Const::Val(Value::Bool(y)),
            _ => Const::NonConst,
        });
    }
    let va = match const_eval(a, env)? {
        Const::NonConst => return Some(Const::NonConst),
        Const::Val(v) => v,
    };
    let vb = match const_eval(b, env)? {
        Const::NonConst => return Some(Const::NonConst),
        Const::Val(v) => v,
    };
    let folded = match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (va, vb) {
            (Value::Int(x), Value::Int(y)) => Some(Value::Int(match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                _ => x.wrapping_mul(y),
            })),
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                let (x, y) = (va.as_float(), vb.as_float());
                Some(Value::Float(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    _ => x * y,
                }))
            }
            _ => None,
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
            let ord = match (va, vb) {
                (Value::Vertex(x), Value::Vertex(y)) => Some(x.cmp(&y)),
                (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(&y)),
                (Value::Int(x), Value::Int(y)) => Some(x.cmp(&y)),
                (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                    va.as_float().partial_cmp(&vb.as_float())
                }
                _ => None,
            };
            ord.map(|o| {
                Value::Bool(match op {
                    BinOp::Lt => o.is_lt(),
                    BinOp::Le => o.is_le(),
                    BinOp::Gt => o.is_gt(),
                    BinOp::Ge => o.is_ge(),
                    BinOp::Eq => o.is_eq(),
                    _ => o.is_ne(),
                })
            })
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    };
    Some(folded.map(Const::Val).unwrap_or(Const::NonConst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::UdfFn;
    use crate::types::Ty;

    fn counter_udf() -> UdfFn {
        // 0: let cnt = 0
        // 1: let done = false
        // 2: for nbrs {
        // 3:   cnt = cnt + 1
        // 4:   if (cnt >= 3) {
        // 5:     done = true
        // 6:     break
        //      }
        //    }
        // 7: if (!done) { 8: emit(cnt) }
        UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("cnt", Ty::Int, Expr::i(0)),
                Stmt::let_("done", Ty::Bool, Expr::b(false)),
                Stmt::for_neighbors(vec![
                    Stmt::assign("cnt", Expr::local("cnt").add(Expr::i(1))),
                    Stmt::if_(
                        Expr::local("cnt").ge(Expr::i(3)),
                        vec![Stmt::assign("done", Expr::b(true)), Stmt::Break],
                    ),
                ]),
                Stmt::if_(
                    Expr::local("done").not(),
                    vec![Stmt::Emit(Expr::local("cnt"))],
                ),
            ],
        )
    }

    #[test]
    fn liveness_sees_loop_carried_reads() {
        let udf = counter_udf();
        let cfg = Cfg::build(&udf);
        let sol = solve(
            &cfg,
            &Liveness {
                exit_live: BTreeSet::new(),
            },
        );
        // After `let cnt = 0`, cnt is read by the loop and the suffix.
        assert!(sol.after[cfg.node_of(0)].contains("cnt"));
        // After `done = true`, done is still read by the suffix `if`.
        assert!(sol.after[cfg.node_of(5)].contains("done"));
        // Before `cnt = cnt + 1`, both carried locals are live.
        assert!(sol.before[cfg.node_of(3)].contains("cnt"));
    }

    #[test]
    fn reaching_defs_on_pruned_graph_exclude_break_only_writes() {
        let udf = counter_udf();
        let cfg = Cfg::build(&udf);
        let pruned = cfg.prune_breaks();
        let sol = solve(&pruned, &ReachingDefs);
        let at_exit = &sol.before[EXIT];
        // `cnt = cnt + 1` (stmt 3) reaches a break-free exit via the
        // loop-exhausted edge.
        assert!(at_exit.contains(&("cnt".to_string(), 3)));
        // `done = true` (stmt 5) is immediately followed by `break` on every
        // path, so it never reaches a break-free exit.
        assert!(!at_exit.contains(&("done".to_string(), 5)));
        // Its initialiser does.
        assert!(at_exit.contains(&("done".to_string(), 1)));
    }

    #[test]
    fn const_prop_folds_straight_line_and_joins() {
        let udf = counter_udf();
        let cfg = Cfg::build(&udf);
        let sol = solve(
            &cfg,
            &ConstProp {
                untrusted_lets: BTreeSet::new(),
            },
        );
        // done is reassigned in the loop, so it is not constant in the
        // suffix...
        let suffix = &sol.before[cfg.node_of(7)];
        assert_eq!(suffix.get("done"), Some(&Const::NonConst));
        // ...and cnt is bumped every iteration.
        assert_eq!(suffix.get("cnt"), Some(&Const::NonConst));
        // Inside the loop body `done` is still provably false: the only
        // write to it is immediately followed by `break`, so the back edge
        // never carries `true`.
        let body = &sol.before[cfg.node_of(3)];
        assert_eq!(body.get("done"), Some(&Const::Val(Value::Bool(false))));
        assert_eq!(body.get("cnt"), Some(&Const::NonConst));
    }

    #[test]
    fn const_prop_proves_unset_flag_constant() {
        // let dbg = false; for { s = s + 1; if (dbg) { break } }
        let udf = UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("dbg", Ty::Bool, Expr::b(false)),
                Stmt::let_("s", Ty::Int, Expr::i(0)),
                Stmt::for_neighbors(vec![
                    Stmt::assign("s", Expr::local("s").add(Expr::i(1))),
                    Stmt::if_(Expr::local("dbg"), vec![Stmt::Break]),
                ]),
                Stmt::Emit(Expr::local("s")),
            ],
        );
        let cfg = Cfg::build(&udf);
        let sol = solve(
            &cfg,
            &ConstProp {
                untrusted_lets: BTreeSet::new(),
            },
        );
        let if_node = cfg.node_of(4);
        let cond = match cfg.stmt(4) {
            Stmt::If { cond, .. } => cond,
            _ => unreachable!(),
        };
        assert_eq!(
            const_eval(cond, &sol.before[if_node]),
            Some(Const::Val(Value::Bool(false)))
        );
    }

    #[test]
    fn untrusted_lets_are_not_folded() {
        let udf = UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("dbg", Ty::Bool, Expr::b(false)),
                Stmt::for_neighbors(vec![Stmt::if_(Expr::local("dbg"), vec![Stmt::Break])]),
            ],
        );
        let cfg = Cfg::build(&udf);
        let untrusted: BTreeSet<String> = ["dbg".to_string()].into_iter().collect();
        let sol = solve(
            &cfg,
            &ConstProp {
                untrusted_lets: untrusted,
            },
        );
        assert_eq!(
            sol.before[cfg.node_of(2)].get("dbg"),
            Some(&Const::NonConst)
        );
    }

    #[test]
    fn fuel_bound_turns_divergence_into_a_typed_error() {
        // An adversarial "analysis" with an infinite ascending chain: the
        // fact is a counter the transfer bumps forever. Without the fuel
        // bound the worklist would never stabilise.
        struct Diverge;
        impl Analysis for Diverge {
            type Fact = u64;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn boundary(&self) -> u64 {
                0
            }
            fn init(&self) -> u64 {
                0
            }
            fn join(&self, into: &mut u64, from: &u64) {
                *into = (*into).max(*from);
            }
            fn transfer(&self, _cfg: &Cfg<'_>, _node: NodeId, fact: &u64) -> u64 {
                fact + 1
            }
        }
        let udf = counter_udf();
        let cfg = Cfg::build(&udf);
        let err = solve_with_fuel(&cfg, &Diverge, 100).unwrap_err();
        assert_eq!(err, FuelExhausted { fuel: 100 });
        assert!(err.to_string().contains("100 node visits"));
        // The same tiny budget is plenty for a real finite-lattice
        // analysis on the same graph.
        assert!(solve_with_fuel(&cfg, &ReachingDefs, 100).is_ok());
    }

    #[test]
    fn short_circuit_folding_matches_interpreter() {
        let env = BTreeMap::new();
        // false && <nonconst> == false
        let e = Expr::b(false).and(Expr::prop_u("p"));
        assert_eq!(const_eval(&e, &env), Some(Const::Val(Value::Bool(false))));
        // <nonconst> && false == false (pure operands)
        let e = Expr::prop_u("p").and(Expr::b(false));
        assert_eq!(const_eval(&e, &env), Some(Const::Val(Value::Bool(false))));
        // <nonconst> && true stays unknown
        let e = Expr::prop_u("p").and(Expr::b(true));
        assert_eq!(const_eval(&e, &env), Some(Const::NonConst));
        // 2 + 3 folds with wrapping semantics
        let e = Expr::i(i64::MAX).add(Expr::i(1));
        assert_eq!(const_eval(&e, &env), Some(Const::Val(Value::Int(i64::MIN))));
    }
}
