//! Abstract syntax of the vertex-UDF language.
//!
//! A UDF is the body of a *dense signal* function (paper Figure 1b): it
//! runs once per destination vertex `v`, may traverse `v`'s (local)
//! in-neighbours with a [`Stmt::ForNeighbors`] loop binding `u`, reads
//! per-vertex property arrays (`frontier[u]`, `color[v]`, …), and emits
//! update values to `v`'s master. `break` inside the neighbour loop is
//! the loop-carried dependency this whole system is about.
//!
//! ASTs are constructed programmatically through the constructor helpers
//! on [`Expr`] and [`Stmt`] (there is no text parser — the paper's
//! analyzer also consumes an existing AST, clang's).

use crate::types::{Ty, Value};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Short-circuit conjunction.
    And,
    /// Short-circuit disjunction.
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A local variable read.
    Local(String),
    /// A per-vertex property read: `array[index]`.
    Prop {
        /// Property array name.
        array: String,
        /// Index expression (must be vertex-typed).
        index: Box<Expr>,
    },
    /// The destination vertex `v`.
    CurrentVertex,
    /// The neighbour `u` bound by the enclosing neighbour loop.
    CurrentNeighbor,
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Boolean literal.
    pub fn b(x: bool) -> Expr {
        Expr::Lit(Value::Bool(x))
    }

    /// Integer literal.
    pub fn i(x: i64) -> Expr {
        Expr::Lit(Value::Int(x))
    }

    /// Float literal.
    pub fn f(x: f64) -> Expr {
        Expr::Lit(Value::Float(x))
    }

    /// Local variable read.
    pub fn local(name: &str) -> Expr {
        Expr::Local(name.to_string())
    }

    /// Property read `array[index]`.
    pub fn prop(array: &str, index: Expr) -> Expr {
        Expr::Prop {
            array: array.to_string(),
            index: Box::new(index),
        }
    }

    /// Property read at the current neighbour: `array[u]`.
    pub fn prop_u(array: &str) -> Expr {
        Expr::prop(array, Expr::CurrentNeighbor)
    }

    /// Property read at the current vertex: `array[v]`.
    pub fn prop_v(array: &str) -> Expr {
        Expr::prop(array, Expr::CurrentVertex)
    }

    /// Boolean negation.
    #[allow(clippy::should_implement_trait)] // DSL-style builder, not ops::Not
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }

    /// Binary operation helper.
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // DSL-style builder, not ops::Add
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }

    /// `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with initialiser.
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initial value.
        init: Expr,
    },
    /// Assignment to a local.
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// Two-way conditional.
    If {
        /// Condition (bool-typed).
        cond: Expr,
        /// Taken when true.
        then_branch: Vec<Stmt>,
        /// Taken when false.
        else_branch: Vec<Stmt>,
    },
    /// The neighbour-traversal loop (binds [`Expr::CurrentNeighbor`]).
    ForNeighbors {
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Break out of the neighbour loop.
    Break,
    /// Emit an update value for the current vertex's master.
    Emit(Expr),
    /// Return from the UDF.
    Return,
    /// *Instrumentation (paper Figure 5):* `d = receive_dep(v); if
    /// (d.skip) return;` plus restoring the carried locals named in the
    /// instrumented function's dependency info. Inserted by
    /// [`crate::instrument`]; hand-written UDFs never contain it.
    ReceiveDepGuard,
    /// *Instrumentation:* `emit_dep(v, d)` — record the break (and the
    /// current carried locals) in the dependency state. Inserted before
    /// each `break` by [`crate::instrument`].
    EmitDep,
}

impl Stmt {
    /// `let name: ty = init;`
    pub fn let_(name: &str, ty: Ty, init: Expr) -> Stmt {
        Stmt::Let {
            name: name.to_string(),
            ty,
            init,
        }
    }

    /// `name = value;`
    pub fn assign(name: &str, value: Expr) -> Stmt {
        Stmt::Assign {
            name: name.to_string(),
            value,
        }
    }

    /// `if (cond) { then_branch }`
    pub fn if_(cond: Expr, then_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch: Vec::new(),
        }
    }

    /// `if (cond) { then_branch } else { else_branch }`
    pub fn if_else(cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        }
    }

    /// `for u in nbrs(v) { body }`
    pub fn for_neighbors(body: Vec<Stmt>) -> Stmt {
        Stmt::ForNeighbors { body }
    }
}

/// A dense-signal UDF.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfFn {
    /// Function name (for diagnostics and pretty-printing).
    pub name: String,
    /// Type of emitted update values.
    pub update_ty: Ty,
    /// Function body.
    pub body: Vec<Stmt>,
}

impl UdfFn {
    /// Creates a UDF.
    pub fn new(name: &str, update_ty: Ty, body: Vec<Stmt>) -> Self {
        UdfFn {
            name: name.to_string(),
            update_ty,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_compose() {
        // if (frontier[u]) { emit(u); break; }
        let s = Stmt::if_(
            Expr::prop_u("frontier"),
            vec![Stmt::Emit(Expr::CurrentNeighbor), Stmt::Break],
        );
        match &s {
            Stmt::If {
                cond, then_branch, ..
            } => {
                assert_eq!(*cond, Expr::prop("frontier", Expr::CurrentNeighbor));
                assert_eq!(then_branch.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expr_helpers() {
        let e = Expr::local("cnt").ge(Expr::i(3));
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Ge,
                Box::new(Expr::Local("cnt".into())),
                Box::new(Expr::Lit(Value::Int(3)))
            )
        );
        let n = Expr::b(true).not();
        assert_eq!(n, Expr::Unary(UnOp::Not, Box::new(Expr::b(true))));
    }

    #[test]
    fn udf_construction() {
        let udf = UdfFn::new("noop", Ty::Bool, vec![Stmt::for_neighbors(vec![])]);
        assert_eq!(udf.name, "noop");
        assert_eq!(udf.body.len(), 1);
    }
}
