//! Typed per-vertex property arrays read by UDFs.
//!
//! The paper's UDFs capture framework-managed vertex state ("frontier",
//! "visited", "color", …). [`PropertyStore`] is the interpreter's view of
//! that state: named, typed, vertex-indexed arrays. The engine keeps them
//! synchronised exactly as it does for native programs (the algorithm
//! driver owns them; the store only borrows shape).

use crate::types::{Ty, Value};
use crate::UdfError;
use std::collections::BTreeMap;
use symple_graph::{Bitmap, Vid};

/// One property array.
#[derive(Debug, Clone, PartialEq)]
pub enum PropArray {
    /// Booleans, stored densely.
    Bools(Bitmap),
    /// Integers.
    Ints(Vec<i64>),
    /// Floats.
    Floats(Vec<f64>),
    /// Vertex ids.
    Vertices(Vec<u32>),
}

impl PropArray {
    /// The element type.
    pub fn ty(&self) -> Ty {
        match self {
            PropArray::Bools(_) => Ty::Bool,
            PropArray::Ints(_) => Ty::Int,
            PropArray::Floats(_) => Ty::Float,
            PropArray::Vertices(_) => Ty::Vertex,
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        match self {
            PropArray::Bools(b) => b.len(),
            PropArray::Ints(v) => v.len(),
            PropArray::Floats(v) => v.len(),
            PropArray::Vertices(v) => v.len(),
        }
    }

    /// Returns `true` if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the value at `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn get(&self, v: Vid) -> Value {
        match self {
            PropArray::Bools(b) => Value::Bool(b.get_vid(v)),
            PropArray::Ints(a) => Value::Int(a[v.index()]),
            PropArray::Floats(a) => Value::Float(a[v.index()]),
            PropArray::Vertices(a) => Value::Vertex(Vid::new(a[v.index()])),
        }
    }
}

/// A set of named property arrays (the UDF's read environment).
#[derive(Debug, Clone, Default)]
pub struct PropertyStore {
    arrays: BTreeMap<String, PropArray>,
}

impl PropertyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PropertyStore::default()
    }

    /// Inserts (or replaces) an array under `name`.
    pub fn insert(&mut self, name: &str, array: PropArray) -> &mut Self {
        self.arrays.insert(name.to_string(), array);
        self
    }

    /// Looks up an array.
    pub fn get(&self, name: &str) -> Option<&PropArray> {
        self.arrays.get(name)
    }

    /// Reads `name[v]`.
    ///
    /// # Errors
    ///
    /// Returns [`UdfError::UnknownProperty`] for missing arrays.
    pub fn read(&self, name: &str, v: Vid) -> Result<Value, UdfError> {
        self.arrays
            .get(name)
            .map(|a| a.get(v))
            .ok_or_else(|| UdfError::UnknownProperty(name.to_string()))
    }

    /// The schema: name → element type (used by the checker).
    pub fn schema(&self) -> BTreeMap<String, Ty> {
        self.arrays
            .iter()
            .map(|(k, v)| (k.clone(), v.ty()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_reads() {
        let mut bits = Bitmap::new(4);
        bits.set(2);
        let mut store = PropertyStore::new();
        store
            .insert("frontier", PropArray::Bools(bits))
            .insert("color", PropArray::Ints(vec![5, 6, 7, 8]))
            .insert("weight", PropArray::Floats(vec![0.5; 4]))
            .insert("parent", PropArray::Vertices(vec![0, 0, 1, 2]));
        assert_eq!(
            store.read("frontier", Vid::new(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            store.read("frontier", Vid::new(1)).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(store.read("color", Vid::new(3)).unwrap(), Value::Int(8));
        assert_eq!(
            store.read("weight", Vid::new(0)).unwrap(),
            Value::Float(0.5)
        );
        assert_eq!(
            store.read("parent", Vid::new(3)).unwrap(),
            Value::Vertex(Vid::new(2))
        );
    }

    #[test]
    fn unknown_property_is_an_error() {
        let store = PropertyStore::new();
        assert_eq!(
            store.read("nope", Vid::new(0)),
            Err(UdfError::UnknownProperty("nope".into()))
        );
    }

    #[test]
    fn schema_reports_types() {
        let mut store = PropertyStore::new();
        store.insert("active", PropArray::Bools(Bitmap::new(2)));
        let schema = store.schema();
        assert_eq!(schema.get("active"), Some(&Ty::Bool));
    }

    #[test]
    fn array_lens() {
        let a = PropArray::Ints(vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.ty(), Ty::Int);
    }
}
