//! The `fold_while` functional DSL (paper §4.3).
//!
//! Instead of having the analyzer reverse-engineer a `for`/`break` loop,
//! the programmer can state the state machine directly: initial
//! dependency state, a compose step folding the next neighbour into the
//! state, an exit condition, and the actions to take on exit. The DSL
//! lowers to the same AST, so "the compiler can easily determine the
//! dependency state" — it is the declared fold state by construction.

use crate::ast::{Expr, Stmt, UdfFn};
use crate::types::Ty;

/// A declarative neighbour fold.
///
/// # Example
///
/// K-core as a fold: carry `cnt`, add active neighbours, exit at `k`.
///
/// ```
/// use symple_udf::{analyze, DepKind, FoldWhile};
/// use symple_udf::ast::{Expr, Stmt};
/// use symple_udf::types::Ty;
///
/// let udf = FoldWhile::new("kcore_fold", Ty::Int)
///     .state("cnt", Ty::Int, Expr::i(0))
///     .compose(vec![Stmt::if_(
///         Expr::prop_u("active"),
///         vec![Stmt::assign("cnt", Expr::local("cnt").add(Expr::i(1)))],
///     )])
///     .until(Expr::local("cnt").ge(Expr::i(8)))
///     .on_exit(vec![Stmt::Emit(Expr::local("cnt"))])
///     .lower();
/// let info = analyze(&udf).unwrap();
/// assert_eq!(info.kind, DepKind::Data);
/// assert_eq!(info.carried[0].0, "cnt");
/// ```
#[derive(Debug, Clone)]
pub struct FoldWhile {
    name: String,
    update_ty: Ty,
    state: Vec<(String, Ty, Expr)>,
    compose: Vec<Stmt>,
    until: Option<Expr>,
    on_exit: Vec<Stmt>,
}

impl FoldWhile {
    /// Starts a fold producing updates of `update_ty`.
    pub fn new(name: &str, update_ty: Ty) -> Self {
        FoldWhile {
            name: name.to_string(),
            update_ty,
            state: Vec::new(),
            compose: Vec::new(),
            until: None,
            on_exit: Vec::new(),
        }
    }

    /// Declares a piece of fold state (becomes a carried local).
    pub fn state(mut self, name: &str, ty: Ty, init: Expr) -> Self {
        self.state.push((name.to_string(), ty, init));
        self
    }

    /// The compose step: folds the current neighbour `u` into the state.
    pub fn compose(mut self, body: Vec<Stmt>) -> Self {
        self.compose = body;
        self
    }

    /// The exit condition, checked after each compose step.
    pub fn until(mut self, cond: Expr) -> Self {
        self.until = Some(cond);
        self
    }

    /// Actions performed when the exit condition fires (typically an
    /// `Emit`), just before the generated `break`.
    pub fn on_exit(mut self, body: Vec<Stmt>) -> Self {
        self.on_exit = body;
        self
    }

    /// Lowers to the equivalent `for`/`break` UDF.
    ///
    /// # Panics
    ///
    /// Panics if [`FoldWhile::until`] was never set.
    pub fn lower(self) -> UdfFn {
        let until = self.until.expect("fold_while requires an exit condition");
        let mut body: Vec<Stmt> = self
            .state
            .iter()
            .map(|(n, t, e)| Stmt::let_(n, *t, e.clone()))
            .collect();
        let mut loop_body = self.compose.clone();
        let mut exit_block = self.on_exit.clone();
        exit_block.push(Stmt::Break);
        loop_body.push(Stmt::if_(until, exit_block));
        body.push(Stmt::for_neighbors(loop_body));
        UdfFn::new(&self.name, self.update_ty, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, DepKind};
    use crate::{instrument, pretty};

    fn bfs_fold() -> UdfFn {
        // carry "found"; exit as soon as a frontier neighbour is seen
        FoldWhile::new("bfs_fold", Ty::Vertex)
            .state("found", Ty::Bool, Expr::b(false))
            .compose(vec![Stmt::if_(
                Expr::prop_u("frontier"),
                vec![Stmt::assign("found", Expr::b(true))],
            )])
            .until(Expr::local("found"))
            .on_exit(vec![Stmt::Emit(Expr::CurrentNeighbor)])
            .lower()
    }

    #[test]
    fn lowered_fold_has_loop_and_break() {
        let udf = bfs_fold();
        let text = pretty(&udf);
        assert!(text.contains("for u in nbrs"));
        assert!(text.contains("break;"));
    }

    #[test]
    fn fold_state_is_detected_as_carried() {
        let info = analyze(&bfs_fold()).unwrap();
        assert_eq!(info.kind, DepKind::Data);
        assert_eq!(info.carried, vec![("found".to_string(), Ty::Bool)]);
    }

    #[test]
    fn lowered_fold_instruments_cleanly() {
        let inst = instrument(&bfs_fold()).unwrap();
        let text = pretty(&inst.udf);
        assert!(text.contains("receive_dep"));
        assert!(text.contains("emit_dep"));
    }

    #[test]
    #[should_panic(expected = "exit condition")]
    fn missing_until_panics() {
        let _ = FoldWhile::new("bad", Ty::Bool).lower();
    }
}
