//! Types and runtime values of the vertex-UDF language.

use std::fmt;
use symple_graph::Vid;

/// The language's types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Vertex identifiers.
    Vertex,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Bool => "bool",
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Vertex => "vertex",
        };
        f.write_str(s)
    }
}

/// Runtime values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A vertex id.
    Vertex(Vid),
}

impl Value {
    /// This value's type.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Bool(_) => Ty::Bool,
            Value::Int(_) => Ty::Int,
            Value::Float(_) => Ty::Float,
            Value::Vertex(_) => Ty::Vertex,
        }
    }

    /// Reads a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the value has a different type (the checker rules this
    /// out for checked programs).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// Reads an integer.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// Reads a float (integers widen implicitly).
    ///
    /// # Panics
    ///
    /// Panics on type mismatch.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(x) => *x,
            Value::Int(i) => *i as f64,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// Reads a vertex id.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch.
    pub fn as_vertex(&self) -> Vid {
        match self {
            Value::Vertex(v) => *v,
            other => panic!("expected vertex, got {other:?}"),
        }
    }

    /// The default (zero) value of a type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Bool => Value::Bool(false),
            Ty::Int => Value::Int(0),
            Ty::Float => Value::Float(0.0),
            Ty::Vertex => Value::Vertex(Vid::new(0)),
        }
    }

    /// Encodes into a `u64` for transport as an engine update payload.
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Bool(b) => u64::from(b),
            Value::Int(i) => i as u64,
            Value::Float(x) => x.to_bits(),
            Value::Vertex(v) => u64::from(v.raw()),
        }
    }

    /// Decodes from [`Value::to_bits`], given the type.
    pub fn from_bits(ty: Ty, bits: u64) -> Value {
        match ty {
            Ty::Bool => Value::Bool(bits != 0),
            Ty::Int => Value::Int(bits as i64),
            Ty::Float => Value::Float(f64::from_bits(bits)),
            Ty::Vertex => Value::Vertex(Vid::new(bits as u32)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Vertex(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Bool(true).ty(), Ty::Bool);
        assert_eq!(Value::Int(3).ty(), Ty::Int);
        assert_eq!(Value::Float(1.5).ty(), Ty::Float);
        assert_eq!(Value::Vertex(Vid::new(2)).ty(), Ty::Vertex);
    }

    #[test]
    fn accessors() {
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::Int(-4).as_int(), -4);
        assert_eq!(Value::Float(2.5).as_float(), 2.5);
        assert_eq!(Value::Int(2).as_float(), 2.0, "ints widen to float");
        assert_eq!(Value::Vertex(Vid::new(9)).as_vertex(), Vid::new(9));
    }

    #[test]
    #[should_panic(expected = "expected bool")]
    fn wrong_accessor_panics() {
        Value::Int(1).as_bool();
    }

    #[test]
    fn bits_roundtrip() {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-123456),
            Value::Float(-2.75),
            Value::Vertex(Vid::new(4_000_000_000)),
        ] {
            assert_eq!(Value::from_bits(v.ty(), v.to_bits()), v);
        }
    }

    #[test]
    fn zeros() {
        assert_eq!(Value::zero(Ty::Int), Value::Int(0));
        assert_eq!(Value::zero(Ty::Bool), Value::Bool(false));
    }

    #[test]
    fn display() {
        assert_eq!(Ty::Vertex.to_string(), "vertex");
        assert_eq!(Value::Int(7).to_string(), "7");
    }
}
