//! Text parser for the vertex-UDF language.
//!
//! Accepts exactly the pseudo-code dialect the pretty-printer emits (the
//! paper's figures), including the instrumentation lines, so
//! `parse(pretty(udf)) == udf` — a property the test-suite checks both on
//! the paper kernels and on randomly generated ASTs. This also lets
//! examples and downstream users keep UDFs as source text files, closer
//! to how the original system consumes C++ sources.

use crate::ast::{BinOp, Expr, Stmt, UdfFn, UnOp};
use crate::diag::SpanMap;
use crate::types::{Ty, Value};
use crate::UdfError;
use std::fmt;
use symple_graph::Vid;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for UdfError {
    fn from(e: ParseError) -> Self {
        UdfError::UnknownProperty(format!("<parse error: {e}>"))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

const PUNCTS: [&str; 22] = [
    "&&", "||", "<=", ">=", "==", "!=", "->", "{", "}", "(", ")", "[", "]", ";", ",", "=", "<",
    ">", "+", "-", "*", ".",
];

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            if let Some(stripped) = rest.strip_prefix("//") {
                let line_len = stripped.find('\n').map_or(stripped.len(), |i| i + 1);
                self.pos += 2 + line_len;
            } else if rest.starts_with(char::is_whitespace) {
                let c = rest.chars().next().unwrap();
                self.pos += c.len_utf8();
            } else {
                return;
            }
        }
    }

    fn next(&mut self) -> Result<Option<Tok>, ParseError> {
        self.skip_trivia();
        let rest = &self.src[self.pos..];
        if rest.is_empty() {
            return Ok(None);
        }
        // `!` needs care: "!=" is a punct, bare "!" is unary not
        if let Some(r) = rest.strip_prefix("!=") {
            let _ = r;
            self.pos += 2;
            return Ok(Some(Tok::Punct("!=")));
        }
        if rest.starts_with('!') {
            self.pos += 1;
            return Ok(Some(Tok::Punct("!")));
        }
        for p in PUNCTS {
            if rest.starts_with(p) {
                self.pos += p.len();
                return Ok(Some(Tok::Punct(p)));
            }
        }
        let c = rest.chars().next().unwrap();
        if c.is_ascii_digit() {
            let end = rest
                .find(|ch: char| !ch.is_ascii_digit() && ch != '.')
                .unwrap_or(rest.len());
            let text = &rest[..end];
            self.pos += end;
            if text.contains('.') {
                return text
                    .parse::<f64>()
                    .map(|f| Some(Tok::Float(f)))
                    .map_err(|_| self.error(format!("bad float literal `{text}`")));
            }
            return text
                .parse::<i64>()
                .map(|i| Some(Tok::Int(i)))
                .map_err(|_| self.error(format!("bad int literal `{text}`")));
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let end = rest
                .find(|ch: char| !ch.is_ascii_alphanumeric() && ch != '_')
                .unwrap_or(rest.len());
            let text = rest[..end].to_string();
            self.pos += end;
            return Ok(Some(Tok::Ident(text)));
        }
        Err(self.error(format!("unexpected character `{c}`")))
    }
}

struct Parser {
    toks: Vec<Tok>,
    offsets: Vec<usize>,
    idx: usize,
    /// Byte spans per statement, recorded in pre-order as statements are
    /// produced — the same numbering the CFG and checker use.
    spans: SpanMap,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lex = Lexer::new(src);
        let mut toks = Vec::new();
        let mut offsets = Vec::new();
        loop {
            // Record the offset of the token itself, not the trivia
            // (whitespace/comments) preceding it, so spans start exactly at
            // the statement's first character.
            lex.skip_trivia();
            let at = lex.pos;
            match lex.next()? {
                Some(t) => {
                    toks.push(t);
                    offsets.push(at);
                }
                None => break,
            }
        }
        offsets.push(src.len());
        Ok(Parser {
            toks,
            offsets,
            idx: 0,
            spans: SpanMap::empty(),
        })
    }

    /// Byte offset of the next unconsumed token (or end of input).
    fn here(&self) -> usize {
        self.offsets[self.idx.min(self.offsets.len() - 1)]
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offsets[self.idx.min(self.offsets.len() - 1)],
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx)
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.idx)
            .cloned()
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.idx += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.bump()? {
            Tok::Punct(q) if q == p => Ok(()),
            other => Err(self.error(format!("expected `{p}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.bump()? {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(self.error(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn any_ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn parse_ty(&mut self, name: &str) -> Option<Ty> {
        match name {
            "bool" => Some(Ty::Bool),
            "int" => Some(Ty::Int),
            "float" => Some(Ty::Float),
            "vertex" => Some(Ty::Vertex),
            _ => None,
        }
    }

    fn parse_udf(&mut self) -> Result<UdfFn, ParseError> {
        self.expect_ident("def")?;
        let name = self.any_ident()?;
        self.expect_punct("(")?;
        self.expect_ident("Vertex")?;
        self.expect_ident("v")?;
        self.expect_punct(",")?;
        self.expect_ident("Array")?;
        self.expect_punct("[")?;
        self.expect_ident("Vertex")?;
        self.expect_punct("]")?;
        self.expect_ident("nbrs")?;
        self.expect_punct(")")?;
        self.expect_punct("->")?;
        let ty_name = self.any_ident()?;
        let update_ty = self
            .parse_ty(&ty_name)
            .ok_or_else(|| self.error(format!("unknown type `{ty_name}`")))?;
        self.expect_punct("{")?;
        let body = self.parse_block()?;
        if self.peek().is_some() {
            return Err(self.error("trailing tokens after function"));
        }
        Ok(UdfFn {
            name,
            update_ty,
            body,
        })
    }

    /// Parses statements until the matching `}` (consumed).
    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.eat_punct("}") {
                return Ok(out);
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Reserve the pre-order span slot before descending so nested
        // statements number after their parent, matching the CFG walk.
        let id = self.spans.reserve(self.here());
        let stmt = self.parse_stmt_inner()?;
        self.spans.finish(id, self.here());
        Ok(stmt)
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        // instrumentation lines
        if self.eat_ident("DepMessage") {
            // DepMessage d = receive_dep(v); if (d.skip) return;
            // tokenized loosely: consume through the second `;`
            self.expect_ident("d")?;
            self.expect_punct("=")?;
            self.expect_ident("receive_dep")?;
            self.expect_punct("(")?;
            self.expect_ident("v")?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            self.expect_ident("if")?;
            self.expect_punct("(")?;
            self.expect_ident("d")?;
            // ".skip" lexes as an error ('.' unhandled) — the pretty form
            // is "d.skip"; accept a float-ish fallback by scanning idents:
            // simplest: expect punct "." fails, so pretty prints "d.skip"
            // — handled below by a dedicated token form.
            self.expect_punct(".")?;
            self.expect_ident("skip")?;
            self.expect_punct(")")?;
            self.expect_ident("return")?;
            self.expect_punct(";")?;
            return Ok(Stmt::ReceiveDepGuard);
        }
        if self.eat_ident("emit_dep") {
            self.expect_punct("(")?;
            self.expect_ident("v")?;
            self.expect_punct(",")?;
            self.expect_ident("d")?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::EmitDep);
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let then_branch = self.parse_block()?;
            let else_branch = if self.eat_ident("else") {
                self.expect_punct("{")?;
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_ident("for") {
            self.expect_ident("u")?;
            self.expect_ident("in")?;
            self.expect_ident("nbrs")?;
            self.expect_punct("{")?;
            let body = self.parse_block()?;
            return Ok(Stmt::ForNeighbors { body });
        }
        if self.eat_ident("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_ident("return") {
            self.expect_punct(";")?;
            return Ok(Stmt::Return);
        }
        if self.eat_ident("emit") {
            self.expect_punct("(")?;
            self.expect_ident("v")?;
            self.expect_punct(",")?;
            let value = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Emit(value));
        }
        // `ty name = expr;` or `name = expr;`
        let first = self.any_ident()?;
        if let Some(ty) = self.parse_ty(&first) {
            let name = self.any_ident()?;
            self.expect_punct("=")?;
            let init = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let { name, ty, init });
        }
        self.expect_punct("=")?;
        let value = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { name: first, value })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_punct("||") {
            let rhs = self.parse_and()?;
            lhs = lhs.bin(BinOp::Or, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_punct("&&") {
            let rhs = self.parse_cmp()?;
            lhs = lhs.bin(BinOp::And, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        for (p, op) in [
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_punct(p) {
                let rhs = self.parse_add()?;
                return Ok(lhs.bin(op, rhs));
            }
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat_punct("+") {
                let rhs = self.parse_mul()?;
                lhs = lhs.bin(BinOp::Add, rhs);
            } else if self.eat_punct("-") {
                let rhs = self.parse_mul()?;
                lhs = lhs.bin(BinOp::Sub, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.eat_punct("*") {
            let rhs = self.parse_unary()?;
            lhs = lhs.bin(BinOp::Mul, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("-") {
            // fold negation of literals so `-3` round-trips as a literal
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(-i)),
                Expr::Lit(Value::Float(f)) => Expr::Lit(Value::Float(-f)),
                other => Expr::Unary(UnOp::Neg, Box::new(other)),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("(") {
            let e = self.parse_expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.bump()? {
            Tok::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            Tok::Float(f) => Ok(Expr::Lit(Value::Float(f))),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Lit(Value::Bool(true))),
                "false" => Ok(Expr::Lit(Value::Bool(false))),
                "v" => Ok(Expr::CurrentVertex),
                "u" => Ok(Expr::CurrentNeighbor),
                _ => {
                    if self.eat_punct("[") {
                        let index = self.parse_expr()?;
                        self.expect_punct("]")?;
                        Ok(Expr::Prop {
                            array: name,
                            index: Box::new(index),
                        })
                    } else if name.starts_with('v') && name[1..].parse::<u32>().is_ok() {
                        // vertex literal like `v7` (the pretty form)
                        Ok(Expr::Lit(Value::Vertex(Vid::new(
                            name[1..].parse().unwrap(),
                        ))))
                    } else {
                        Ok(Expr::Local(name))
                    }
                }
            },
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parses a UDF from the pretty-printed pseudo-code dialect.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
///
/// # Example
///
/// ```
/// use symple_udf::parser::parse_udf;
///
/// let udf = parse_udf(r#"
/// def bfs(Vertex v, Array[Vertex] nbrs) -> vertex {
///   for u in nbrs {
///     if (frontier[u]) {
///       emit(v, u);
///       break;
///     }
///   }
/// }"#).unwrap();
/// assert_eq!(udf.name, "bfs");
/// ```
pub fn parse_udf(src: &str) -> Result<UdfFn, ParseError> {
    Parser::new(src)?.parse_udf()
}

/// Like [`parse_udf`], but also returns the byte-offset [`SpanMap`] mapping
/// each statement's pre-order id to its source range. The AST itself stays
/// span-free (structural equality is part of the language's contract); the
/// side table is what lets [`crate::check_all`] and [`crate::lint`] render
/// findings with line/column carets.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
pub fn parse_udf_with_spans(src: &str) -> Result<(UdfFn, SpanMap), ParseError> {
    let mut p = Parser::new(src)?;
    let udf = p.parse_udf()?;
    Ok((udf, p.spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instrument, paper_udfs, pretty};

    #[test]
    fn paper_udfs_roundtrip() {
        for udf in [
            paper_udfs::bfs_udf(),
            paper_udfs::mis_udf(),
            paper_udfs::kcore_udf(8),
            paper_udfs::kmeans_udf(),
            paper_udfs::sampling_udf(),
        ] {
            let text = pretty(&udf);
            let back = parse_udf(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", udf.name));
            assert_eq!(back, udf, "roundtrip failed for {}\n{}", udf.name, text);
        }
    }

    #[test]
    fn instrumented_udfs_roundtrip() {
        for udf in [paper_udfs::bfs_udf(), paper_udfs::kcore_udf(3)] {
            let inst = instrument(&udf).unwrap();
            let text = pretty(&inst.udf);
            let back = parse_udf(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(back, inst.udf, "instrumented roundtrip\n{text}");
        }
    }

    #[test]
    fn else_branch_parses() {
        let udf = parse_udf(
            "def t(Vertex v, Array[Vertex] nbrs) -> bool {\n\
             if (true) { return; } else { emit(v, false); }\n}",
        )
        .unwrap();
        match &udf.body[0] {
            Stmt::If { else_branch, .. } => assert_eq!(else_branch.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let udf = parse_udf("def t(Vertex v, Array[Vertex] nbrs) -> int { emit(v, 1 + 2 * 3); }")
            .unwrap();
        match &udf.body[0] {
            Stmt::Emit(Expr::Binary(BinOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let udf = parse_udf("def t(Vertex v, Array[Vertex] nbrs) -> int { emit(v, -4); }").unwrap();
        assert_eq!(udf.body[0], Stmt::Emit(Expr::i(-4)));
    }

    #[test]
    fn vertex_literals_parse() {
        let udf =
            parse_udf("def t(Vertex v, Array[Vertex] nbrs) -> vertex { emit(v, v7); }").unwrap();
        assert_eq!(
            udf.body[0],
            Stmt::Emit(Expr::Lit(Value::Vertex(Vid::new(7))))
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_udf("def t(Vertex v").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("parse error"));
        let err = parse_udf("def t(Vertex v, Array[Vertex] nbrs) -> wat { }").unwrap_err();
        assert!(err.message.contains("unknown type"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse_udf("def t(Vertex v, Array[Vertex] nbrs) -> bool { } extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn spans_follow_preorder_statements() {
        let src = "def t(Vertex v, Array[Vertex] nbrs) -> int {\n  int x = 0;\n  for u in nbrs {\n    x = x + 1;\n    if (x >= 2) {\n      break;\n    }\n  }\n  emit(v, x);\n}";
        let (udf, spans) = parse_udf_with_spans(src).unwrap();
        // pre-order: 0 let, 1 for, 2 assign, 3 if, 4 break, 5 emit
        assert_eq!(spans.len(), 6);
        let let_span = spans.get(0).unwrap();
        assert!(src[let_span.start..].starts_with("int x = 0;"));
        let brk = spans.get(4).unwrap();
        assert!(src[brk.start..].starts_with("break;"));
        assert!(brk.end >= brk.start + "break;".len());
        let emit = spans.get(5).unwrap();
        assert!(src[emit.start..].starts_with("emit(v, x);"));
        assert_eq!(udf.body.len(), 3);
    }

    #[test]
    fn comments_are_skipped() {
        let udf = parse_udf(
            "def t(Vertex v, Array[Vertex] nbrs) -> bool {\n// nothing\nreturn; // done\n}",
        )
        .unwrap();
        assert_eq!(udf.body, vec![Stmt::Return]);
    }
}
