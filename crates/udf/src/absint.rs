//! Abstract interpretation of UDFs: interval (value-range) and
//! monotonicity/latch domains over the CFG, emitting a
//! [`DepCertificate`].
//!
//! # Interval domain
//!
//! Every integer-like local (`int`, `bool` as 0/1, `vertex` as its raw
//! id) is tracked as an interval `[lo, hi]`; floats are untracked
//! (unbounded). The fixpoint runs over the **break-pruned** CFG
//! ([`Cfg::prune_breaks`]) so that the environment reaching `Exit`
//! describes exactly the break-free executions — the only executions
//! whose carried snapshot downstream machines restore. Branch edges are
//! refined by the condition (`cnt >= k` false narrows `cnt` to
//! `[lo, k-1]`), loop heads widen after a fixed number of visits using
//! *threshold widening* (bounds jump to the nearest program literal, then
//! the type extreme), and two narrowing sweeps recover precision lost to
//! widening. Arithmetic is evaluated in `i128`; any bound escaping `i64`
//! collapses the interval to the full type range, which keeps the
//! analysis sound for the language's wrapping semantics.
//!
//! Carried locals close a second, outer fixpoint: under circulant
//! scheduling the value a machine restores is some earlier machine's
//! break-free exit value (or zero, from the lead machine's reset). The
//! restore interval starts at `[0, 0]` and is re-joined with the inferred
//! break-free exit interval until it stabilises, widening after a few
//! rounds. A carried `let` transfers to `join(restore, eval(init))` —
//! the `init` arm covers scratch-mode executions that never restore.
//!
//! The certified **wire range** of a carried local joins three sources:
//! zero (reset), the environment at every reachable `break` (the
//! `emit_dep` snapshot), and the break-free exit environment (the
//! end-of-segment snapshot). That is every value the dependency state can
//! ever hold, so it bounds what travels on the wire — the width
//! consumers in `dep_bridge` rely on exactly this.
//!
//! # Monotonicity / latch domain
//!
//! Per carried local, the direction of every reachable loop assignment is
//! joined: `x = x + e` with `e >= 0` is non-decreasing, a guarded
//! `x = E` under a governing conjunct `E < x` is non-increasing, and so
//! on. A break condition is *stable* — once it triggers, re-scanning the
//! remaining neighbours would trigger it again — when each governing
//! conjunct either (a) reads a `u`-indexed property (a per-neighbour
//! selector: properties are frozen during a pass, so the selecting
//! neighbour keeps selecting), (b) reads no carried local and no
//! loop-assigned local (pass-invariant), or (c) compares a carried local
//! against a pass-invariant bound in its proven monotone direction
//! (`cnt >= k` with `cnt` non-decreasing). Certified early-exit in the
//! engine requires every reachable break to be stable; lint W008 reports
//! the ones that are not.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ast::{BinOp, Expr, Stmt, UdfFn, UnOp};
use crate::certificate::{width_for, CarriedCert, DepCertificate, Monotonicity, ValueRange};
use crate::cfg::{Cfg, NodeId, ENTRY, EXIT};
use crate::diag::StmtId;
use crate::types::{Ty, Value};

/// Loop-head visits before widening kicks in.
const WIDEN_DELAY: usize = 8;
/// Outer restore-fixpoint rounds before the restore interval widens.
const RESTORE_WIDEN_AFTER: usize = 4;
/// Outer restore-fixpoint round cap.
const MAX_RESTORE_ROUNDS: usize = 16;

/// A non-empty inclusive integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Itv {
    lo: i64,
    hi: i64,
}

const FULL_INT: Itv = Itv {
    lo: i64::MIN,
    hi: i64::MAX,
};

impl Itv {
    fn point(x: i64) -> Itv {
        Itv { lo: x, hi: x }
    }

    fn join(self, o: Itv) -> Itv {
        Itv {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    fn meet(self, o: Itv) -> Option<Itv> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Itv { lo, hi })
    }

    /// Clamps an `i128` bound pair back to an `i64` interval; any
    /// overflow collapses to the full range (sound for wrapping
    /// arithmetic: a wrapped value can land anywhere).
    fn from_wide(lo: i128, hi: i128) -> Itv {
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            FULL_INT
        } else {
            Itv {
                lo: lo as i64,
                hi: hi as i64,
            }
        }
    }

    fn add(self, o: Itv) -> Itv {
        Itv::from_wide(
            self.lo as i128 + o.lo as i128,
            self.hi as i128 + o.hi as i128,
        )
    }

    fn sub(self, o: Itv) -> Itv {
        Itv::from_wide(
            self.lo as i128 - o.hi as i128,
            self.hi as i128 - o.lo as i128,
        )
    }

    fn mul(self, o: Itv) -> Itv {
        let ps = [
            self.lo as i128 * o.lo as i128,
            self.lo as i128 * o.hi as i128,
            self.hi as i128 * o.lo as i128,
            self.hi as i128 * o.hi as i128,
        ];
        Itv::from_wide(*ps.iter().min().unwrap(), *ps.iter().max().unwrap())
    }

    fn neg(self) -> Itv {
        Itv::from_wide(-(self.hi as i128), -(self.lo as i128))
    }
}

/// Full interval of a type's integer image; `None` for floats, which the
/// domain does not track.
fn ty_full(ty: Ty) -> Option<Itv> {
    match ty {
        Ty::Bool => Some(Itv { lo: 0, hi: 1 }),
        Ty::Int => Some(FULL_INT),
        Ty::Vertex => Some(Itv {
            lo: 0,
            hi: u32::MAX as i64,
        }),
        Ty::Float => None,
    }
}

const BOOL_TOP: Itv = Itv { lo: 0, hi: 1 };
const TRUE_ITV: Itv = Itv { lo: 1, hi: 1 };
const FALSE_ITV: Itv = Itv { lo: 0, hi: 0 };

/// Abstract value of an expression: a tracked interval or nothing known
/// (floats and anything built from them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    I(Itv),
    Unknown,
}

/// Abstract environment at a program point: tracked locals only; a local
/// absent from the map is either float-typed or not yet defined on this
/// path (the checker rules out use-before-def, so joins may keep the
/// one-sided value).
type Env = BTreeMap<String, Itv>;

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(k.clone())
            .and_modify(|cur| *cur = cur.join(*v))
            .or_insert(*v);
    }
    out
}

/// The interval analyser for one (pruned) CFG and one restore
/// hypothesis.
struct Analyzer<'a> {
    cfg: &'a Cfg<'a>,
    /// Declared type per local (from `let`s, overlaid with the carried
    /// slice so the carried types always win).
    tys: BTreeMap<String, Ty>,
    /// Property schema (may be empty: property reads then bound only by
    /// their use, not their type).
    schema: BTreeMap<String, Ty>,
    /// Carried locals (restored by the receive guard).
    carried: BTreeMap<String, Ty>,
    /// Current hypothesis for restored carried values.
    restore: BTreeMap<String, Itv>,
    /// Sorted widening thresholds (program literals ±1, 0, extremes).
    thresholds: Vec<i64>,
}

impl<'a> Analyzer<'a> {
    fn eval(&self, e: &Expr, env: &Env) -> AbsVal {
        match e {
            Expr::Lit(Value::Int(i)) => AbsVal::I(Itv::point(*i)),
            Expr::Lit(Value::Bool(b)) => AbsVal::I(Itv::point(i64::from(*b))),
            Expr::Lit(Value::Vertex(v)) => AbsVal::I(Itv::point(i64::from(v.raw()))),
            Expr::Lit(Value::Float(_)) => AbsVal::Unknown,
            Expr::Local(name) => match env.get(name) {
                Some(i) => AbsVal::I(*i),
                None => AbsVal::Unknown,
            },
            Expr::Prop { array, .. } => match self.schema.get(array).copied().and_then(ty_full) {
                Some(i) => AbsVal::I(i),
                None => AbsVal::Unknown,
            },
            Expr::CurrentVertex | Expr::CurrentNeighbor => AbsVal::I(Itv {
                lo: 0,
                hi: u32::MAX as i64,
            }),
            Expr::Unary(UnOp::Not, inner) => match self.eval(inner, env) {
                AbsVal::I(i) if i == TRUE_ITV => AbsVal::I(FALSE_ITV),
                AbsVal::I(i) if i == FALSE_ITV => AbsVal::I(TRUE_ITV),
                _ => AbsVal::I(BOOL_TOP),
            },
            Expr::Unary(UnOp::Neg, inner) => match self.eval(inner, env) {
                AbsVal::I(i) => AbsVal::I(i.neg()),
                AbsVal::Unknown => AbsVal::Unknown,
            },
            Expr::Binary(op, l, r) => {
                let a = self.eval(l, env);
                let b = self.eval(r, env);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul => match (a, b) {
                        (AbsVal::I(x), AbsVal::I(y)) => AbsVal::I(match op {
                            BinOp::Add => x.add(y),
                            BinOp::Sub => x.sub(y),
                            _ => x.mul(y),
                        }),
                        _ => AbsVal::Unknown,
                    },
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        AbsVal::I(match (a, b) {
                            (AbsVal::I(x), AbsVal::I(y)) => cmp_itv(*op, x, y),
                            _ => BOOL_TOP,
                        })
                    }
                    BinOp::And => AbsVal::I(match (a, b) {
                        (AbsVal::I(x), _) if x == FALSE_ITV => FALSE_ITV,
                        (_, AbsVal::I(y)) if y == FALSE_ITV => FALSE_ITV,
                        (AbsVal::I(x), AbsVal::I(y)) if x == TRUE_ITV && y == TRUE_ITV => TRUE_ITV,
                        _ => BOOL_TOP,
                    }),
                    BinOp::Or => AbsVal::I(match (a, b) {
                        (AbsVal::I(x), _) if x == TRUE_ITV => TRUE_ITV,
                        (_, AbsVal::I(y)) if y == TRUE_ITV => TRUE_ITV,
                        (AbsVal::I(x), AbsVal::I(y)) if x == FALSE_ITV && y == FALSE_ITV => {
                            FALSE_ITV
                        }
                        _ => BOOL_TOP,
                    }),
                }
            }
        }
    }

    /// Transfer through the statement at `node` (identity for anything
    /// that does not assign a local).
    fn transfer(&self, node: NodeId, env: &Env) -> Env {
        let Some(id) = self.cfg.stmt_of(node) else {
            return env.clone();
        };
        match self.cfg.stmt(id) {
            Stmt::Let { name, ty, init } => {
                let mut out = env.clone();
                match ty_full(*ty) {
                    Some(full) => {
                        let mut v = match self.eval(init, env) {
                            AbsVal::I(i) => i.meet(full).unwrap_or(full),
                            AbsVal::Unknown => full,
                        };
                        if self.carried.contains_key(name) {
                            if let Some(r) = self.restore.get(name) {
                                v = v.join(*r);
                            }
                        }
                        out.insert(name.clone(), v);
                    }
                    None => {
                        out.remove(name);
                    }
                }
                out
            }
            Stmt::Assign { name, value } => {
                let mut out = env.clone();
                match self.tys.get(name).copied().and_then(ty_full) {
                    Some(full) => {
                        let v = match self.eval(value, env) {
                            AbsVal::I(i) => i.meet(full).unwrap_or(full),
                            AbsVal::Unknown => full,
                        };
                        out.insert(name.clone(), v);
                    }
                    None => {
                        out.remove(name);
                    }
                }
                out
            }
            _ => env.clone(),
        }
    }

    /// Refines `env` along the `branch` edge of condition `cond`.
    /// Returns `None` when the edge is infeasible.
    fn refine(&self, env: Env, cond: &Expr, branch: bool) -> Option<Env> {
        match cond {
            Expr::Local(x) => {
                let mut env = env;
                if let Some(cur) = env.get(x).copied() {
                    let want = if branch { TRUE_ITV } else { FALSE_ITV };
                    env.insert(x.clone(), cur.meet(want)?);
                }
                Some(env)
            }
            Expr::Unary(UnOp::Not, inner) => self.refine(env, inner, !branch),
            Expr::Binary(BinOp::And, l, r) if branch => {
                let env = self.refine(env, l, true)?;
                self.refine(env, r, true)
            }
            Expr::Binary(BinOp::Or, l, r) if !branch => {
                let env = self.refine(env, l, false)?;
                self.refine(env, r, false)
            }
            Expr::Binary(op, l, r) if is_cmp(*op) => {
                let op = if branch { *op } else { negate_cmp(*op) };
                let mut env = env;
                if let Expr::Local(x) = l.as_ref() {
                    if let AbsVal::I(ri) = self.eval(r, &env) {
                        env = self.apply_cmp(env, x, op, ri)?;
                    }
                }
                if let Expr::Local(x) = r.as_ref() {
                    if let AbsVal::I(li) = self.eval(l, &env) {
                        env = self.apply_cmp(env, x, swap_cmp(op), li)?;
                    }
                }
                Some(env)
            }
            _ => Some(env),
        }
    }

    /// Narrows tracked local `x` by `x <op> bound`.
    fn apply_cmp(&self, mut env: Env, x: &str, op: BinOp, bound: Itv) -> Option<Env> {
        let Some(cur) = env.get(x).copied() else {
            return Some(env);
        };
        let narrowed = match op {
            // x < b for the runtime b in `bound`: x <= bound.hi - 1.
            BinOp::Lt => upper(cur, bound.hi as i128 - 1)?,
            BinOp::Le => upper(cur, bound.hi as i128)?,
            BinOp::Gt => lower(cur, bound.lo as i128 + 1)?,
            BinOp::Ge => lower(cur, bound.lo as i128)?,
            BinOp::Eq => cur.meet(bound)?,
            BinOp::Ne => {
                if bound.lo == bound.hi {
                    let b = bound.lo;
                    if cur.lo == b && cur.hi == b {
                        return None;
                    } else if cur.lo == b {
                        Itv {
                            lo: b + 1,
                            hi: cur.hi,
                        }
                    } else if cur.hi == b {
                        Itv {
                            lo: cur.lo,
                            hi: b - 1,
                        }
                    } else {
                        cur
                    }
                } else {
                    cur
                }
            }
            _ => cur,
        };
        env.insert(x.to_string(), narrowed);
        Some(env)
    }

    /// Widens `old ∪ new` per variable: an escaping bound jumps to the
    /// nearest threshold (program literal), then the type extreme.
    fn widen_env(&self, old: &Env, new: &Env) -> Env {
        let mut out = new.clone();
        for (k, nv) in new {
            let Some(ov) = old.get(k) else { continue };
            let full = self
                .tys
                .get(k)
                .copied()
                .and_then(ty_full)
                .unwrap_or(FULL_INT);
            let mut w = *nv;
            if nv.lo < ov.lo {
                w.lo = self
                    .thresholds
                    .iter()
                    .rev()
                    .find(|&&t| t <= nv.lo)
                    .copied()
                    .unwrap_or(i64::MIN)
                    .max(full.lo);
            }
            if nv.hi > ov.hi {
                w.hi = self
                    .thresholds
                    .iter()
                    .find(|&&t| t >= nv.hi)
                    .copied()
                    .unwrap_or(i64::MAX)
                    .min(full.hi);
            }
            out.insert(k.clone(), w);
        }
        out
    }

    /// Environment propagated along the edge `from → to` given the
    /// environment *after* `from`'s transfer. `None` = infeasible edge.
    fn edge_env(&self, from: NodeId, to: NodeId, out: &Env) -> Option<Env> {
        if let Some((then_e, else_e)) = self.cfg.branch_targets(from) {
            if then_e != else_e {
                if let Some(id) = self.cfg.stmt_of(from) {
                    if let Stmt::If { cond, .. } = self.cfg.stmt(id) {
                        let branch = to == then_e;
                        return self.refine(out.clone(), cond, branch);
                    }
                }
            }
        }
        Some(out.clone())
    }

    /// Whether `node` is a loop head (widening point).
    fn is_loop_head(&self, node: NodeId) -> bool {
        self.cfg
            .stmt_of(node)
            .map(|id| matches!(self.cfg.stmt(id), Stmt::ForNeighbors { .. }))
            .unwrap_or(false)
    }

    /// Worklist fixpoint with widening, then two narrowing sweeps.
    /// Returns the environment *before* each node (`None` =
    /// unreachable), or `None` if `fuel` ran out.
    fn solve(&self, fuel: &mut usize) -> Option<Vec<Option<Env>>> {
        let n = self.cfg.node_count();
        let mut before: Vec<Option<Env>> = vec![None; n];
        before[ENTRY] = Some(Env::new());
        let mut visits = vec![0usize; n];
        let mut queued = vec![false; n];
        let mut wl = VecDeque::from([ENTRY]);
        queued[ENTRY] = true;
        while let Some(node) = wl.pop_front() {
            queued[node] = false;
            if *fuel == 0 {
                return None;
            }
            *fuel -= 1;
            let Some(env_in) = before[node].clone() else {
                continue;
            };
            let out = self.transfer(node, &env_in);
            for &s in self.cfg.succs(node) {
                let Some(edge) = self.edge_env(node, s, &out) else {
                    continue;
                };
                let updated = match &before[s] {
                    None => Some(edge),
                    Some(old) => {
                        let mut joined = join_env(old, &edge);
                        if self.is_loop_head(s) && visits[s] >= WIDEN_DELAY {
                            joined = self.widen_env(old, &joined);
                        }
                        (joined != *old).then_some(joined)
                    }
                };
                if let Some(newv) = updated {
                    before[s] = Some(newv);
                    visits[s] += 1;
                    if !queued[s] {
                        queued[s] = true;
                        wl.push_back(s);
                    }
                }
            }
        }
        // Narrowing: recompute from predecessors a couple of times. The
        // solved state is a post-fixpoint and all transfers are
        // monotone, so each sweep can only shrink while staying sound.
        for _ in 0..2 {
            for node in 0..n {
                if node == ENTRY {
                    continue;
                }
                let mut nb: Option<Env> = None;
                for &p in self.cfg.preds(node) {
                    let Some(penv) = &before[p] else { continue };
                    let out = self.transfer(p, penv);
                    if let Some(edge) = self.edge_env(p, node, &out) {
                        nb = Some(match nb {
                            None => edge,
                            Some(cur) => join_env(&cur, &edge),
                        });
                    }
                }
                before[node] = nb;
            }
        }
        Some(before)
    }
}

/// Abstract comparison: a decided `[1,1]`/`[0,0]` when the intervals
/// force the outcome, `[0,1]` otherwise.
fn cmp_itv(op: BinOp, a: Itv, b: Itv) -> Itv {
    let decided = |t: bool, f: bool| {
        if t {
            TRUE_ITV
        } else if f {
            FALSE_ITV
        } else {
            BOOL_TOP
        }
    };
    match op {
        BinOp::Lt => decided(a.hi < b.lo, a.lo >= b.hi),
        BinOp::Le => decided(a.hi <= b.lo, a.lo > b.hi),
        BinOp::Gt => decided(a.lo > b.hi, a.hi <= b.lo),
        BinOp::Ge => decided(a.lo >= b.hi, a.hi < b.lo),
        BinOp::Eq => decided(
            a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
            a.meet(b).is_none(),
        ),
        BinOp::Ne => decided(
            a.meet(b).is_none(),
            a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
        ),
        _ => BOOL_TOP,
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// `a <op> b` rewritten as `b <op'> a`.
fn swap_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// `x <= cap`, where `cap` may sit outside `i64`.
fn upper(x: Itv, cap: i128) -> Option<Itv> {
    if cap < x.lo as i128 {
        return None;
    }
    Some(Itv {
        lo: x.lo,
        hi: x.hi.min(cap.min(i64::MAX as i128) as i64),
    })
}

/// `x >= floor`, where `floor` may sit outside `i64`.
fn lower(x: Itv, floor: i128) -> Option<Itv> {
    if floor > x.hi as i128 {
        return None;
    }
    Some(Itv {
        lo: x.lo.max(floor.max(i64::MIN as i128) as i64),
        hi: x.hi,
    })
}

/// One assignment site inside the neighbour loop, with its chain of
/// governing `if` conditions (and branch polarity).
struct AssignSite<'a> {
    id: StmtId,
    name: &'a str,
    value: &'a Expr,
    guards: Vec<(&'a Expr, bool)>,
}

/// One `break` site inside the neighbour loop.
struct BreakSite<'a> {
    id: StmtId,
    guards: Vec<(&'a Expr, bool)>,
}

#[derive(Default)]
struct LoopScan<'a> {
    assigns: Vec<AssignSite<'a>>,
    breaks: Vec<BreakSite<'a>>,
    /// Locals assigned (or re-`let`) anywhere inside the loop — not
    /// pass-invariant.
    loop_assigned: BTreeSet<&'a str>,
}

/// Walks the body in the CFG's pre-order, collecting loop assignment and
/// break sites with their in-loop guard chains. Guards *outside* the
/// loop are deliberately dropped: their conditions are evaluated once,
/// before the loop, and cannot un-trigger mid-scan.
fn scan<'a>(body: &'a [Stmt]) -> LoopScan<'a> {
    fn walk<'a>(
        stmts: &'a [Stmt],
        id: &mut StmtId,
        in_loop: bool,
        guards: &mut Vec<(&'a Expr, bool)>,
        out: &mut LoopScan<'a>,
    ) {
        for s in stmts {
            let my_id = *id;
            *id += 1;
            match s {
                Stmt::Assign { name, value } if in_loop => {
                    out.loop_assigned.insert(name);
                    out.assigns.push(AssignSite {
                        id: my_id,
                        name,
                        value,
                        guards: guards.clone(),
                    });
                }
                Stmt::Let { name, .. } if in_loop => {
                    out.loop_assigned.insert(name);
                }
                Stmt::Break if in_loop => {
                    out.breaks.push(BreakSite {
                        id: my_id,
                        guards: guards.clone(),
                    });
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    if in_loop {
                        guards.push((cond, true));
                        walk(then_branch, id, in_loop, guards, out);
                        guards.pop();
                        guards.push((cond, false));
                        walk(else_branch, id, in_loop, guards, out);
                        guards.pop();
                    } else {
                        walk(then_branch, id, in_loop, guards, out);
                        walk(else_branch, id, in_loop, guards, out);
                    }
                }
                Stmt::ForNeighbors { body } => {
                    let mut inner = Vec::new();
                    walk(body, id, true, &mut inner, out);
                }
                _ => {}
            }
        }
    }
    let mut out = LoopScan::default();
    let mut id = 0;
    walk(body, &mut id, false, &mut Vec::new(), &mut out);
    out
}

fn split_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary(BinOp::And, l, r) = e {
        split_and(l, out);
        split_and(r, out);
    } else {
        out.push(e);
    }
}

fn contains_current_neighbor(e: &Expr) -> bool {
    match e {
        Expr::CurrentNeighbor => true,
        Expr::Lit(_) | Expr::Local(_) | Expr::CurrentVertex => false,
        Expr::Prop { index, .. } => contains_current_neighbor(index),
        Expr::Unary(_, inner) => contains_current_neighbor(inner),
        Expr::Binary(_, l, r) => contains_current_neighbor(l) || contains_current_neighbor(r),
    }
}

fn reads_local_from(e: &Expr, names: &BTreeSet<&str>) -> bool {
    match e {
        Expr::Local(n) => names.contains(n.as_str()),
        Expr::Lit(_) | Expr::CurrentVertex | Expr::CurrentNeighbor => false,
        Expr::Prop { index, .. } => reads_local_from(index, names),
        Expr::Unary(_, inner) => reads_local_from(inner, names),
        Expr::Binary(_, l, r) => reads_local_from(l, names) || reads_local_from(r, names),
    }
}

fn reads_local(e: &Expr, name: &str) -> bool {
    let mut set = BTreeSet::new();
    set.insert(name);
    reads_local_from(e, &set)
}

fn join_mono(a: Monotonicity, b: Monotonicity) -> Monotonicity {
    use Monotonicity::*;
    match (a, b) {
        (Constant, m) | (m, Constant) => m,
        (x, y) if x == y => x,
        _ => Unknown,
    }
}

/// Direction of one assignment `x = value` given its governing guards
/// and the abstract environment before it.
fn classify_assign(an: &Analyzer<'_>, site: &AssignSite<'_>, env: &Env) -> Monotonicity {
    let x = site.name;
    match site.value {
        // x = x ± e: the sign of e decides the direction.
        Expr::Binary(BinOp::Add, l, r) => {
            let delta = if matches!(l.as_ref(), Expr::Local(n) if n == x) {
                Some(r)
            } else if matches!(r.as_ref(), Expr::Local(n) if n == x) {
                Some(l)
            } else {
                None
            };
            match delta.map(|d| an.eval(d, env)) {
                Some(AbsVal::I(d)) if d.lo >= 0 => Monotonicity::NonDecreasing,
                Some(AbsVal::I(d)) if d.hi <= 0 => Monotonicity::NonIncreasing,
                _ => Monotonicity::Unknown,
            }
        }
        Expr::Binary(BinOp::Sub, l, r) if matches!(l.as_ref(), Expr::Local(n) if n == x) => {
            match an.eval(r, env) {
                AbsVal::I(d) if d.lo >= 0 => Monotonicity::NonIncreasing,
                AbsVal::I(d) if d.hi <= 0 => Monotonicity::NonDecreasing,
                _ => Monotonicity::Unknown,
            }
        }
        Expr::Lit(Value::Bool(true)) => Monotonicity::NonDecreasing,
        Expr::Lit(Value::Bool(false)) => Monotonicity::NonIncreasing,
        Expr::Local(n) if n == x => Monotonicity::Constant,
        // x = E (E free of x): a governing conjunct `E < x` proves the
        // assignment only ever lowers x (the cc min-fold shape); `E > x`
        // the dual.
        value if !reads_local(value, x) => {
            for (g, positive) in &site.guards {
                if !positive {
                    continue;
                }
                let mut conjuncts = Vec::new();
                split_and(g, &mut conjuncts);
                for c in conjuncts {
                    if let Expr::Binary(op, l, r) = c {
                        let (op, bound, local) = if matches!(r.as_ref(), Expr::Local(n) if n == x) {
                            (*op, l.as_ref(), true)
                        } else if matches!(l.as_ref(), Expr::Local(n) if n == x) {
                            (swap_cmp(*op), r.as_ref(), true)
                        } else {
                            (*op, c, false)
                        };
                        if local && bound == value {
                            // Normalised as `bound <op> x`.
                            match op {
                                BinOp::Lt | BinOp::Le => return Monotonicity::NonIncreasing,
                                BinOp::Gt | BinOp::Ge => return Monotonicity::NonDecreasing,
                                _ => {}
                            }
                        }
                    }
                }
            }
            Monotonicity::Unknown
        }
        _ => Monotonicity::Unknown,
    }
}

/// Whether a break conjunct stays triggered for the rest of the scan
/// (see the module docs for the three cases).
fn conjunct_stable(
    c: &Expr,
    positive: bool,
    mono: &BTreeMap<String, Monotonicity>,
    carried: &BTreeSet<&str>,
    loop_assigned: &BTreeSet<&str>,
) -> bool {
    // Per-neighbour selector: properties are frozen during the pass.
    if contains_current_neighbor(c) {
        return true;
    }
    // Carried-free and loop-invariant: cannot change mid-scan.
    if !reads_local_from(c, carried) {
        return !reads_local_from(c, loop_assigned);
    }
    let dir_ok = |x: &str, toward_true: bool| -> bool {
        matches!(
            (mono.get(x), toward_true),
            (Some(Monotonicity::Constant), _)
                | (Some(Monotonicity::NonDecreasing), true)
                | (Some(Monotonicity::NonIncreasing), false)
        )
    };
    match c {
        // Bare carried bool: latched iff only ever pushed toward the
        // polarity we need.
        Expr::Local(x) => dir_ok(x, positive),
        Expr::Unary(UnOp::Not, inner) => {
            conjunct_stable(inner, !positive, mono, carried, loop_assigned)
        }
        Expr::Binary(BinOp::And, l, r) if positive => {
            conjunct_stable(l, true, mono, carried, loop_assigned)
                && conjunct_stable(r, true, mono, carried, loop_assigned)
        }
        Expr::Binary(op, l, r) if is_cmp(*op) => {
            // Normalise to `x <op'> bound` with x a bare carried local
            // and the bound pass-invariant and carried-free.
            let (x, op, bound) = match (l.as_ref(), r.as_ref()) {
                (Expr::Local(x), b) if carried.contains(x.as_str()) => (x, *op, b),
                (b, Expr::Local(x)) if carried.contains(x.as_str()) => (x, swap_cmp(*op), b),
                _ => return false,
            };
            if reads_local_from(bound, carried) || reads_local_from(bound, loop_assigned) {
                return false;
            }
            let op = if positive { op } else { negate_cmp(op) };
            match op {
                BinOp::Ge | BinOp::Gt => dir_ok(x, true),
                BinOp::Le | BinOp::Lt => dir_ok(x, false),
                BinOp::Eq | BinOp::Ne => {
                    matches!(mono.get(x.as_str()), Some(Monotonicity::Constant))
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Fallback certificate when the fixpoint runs out of fuel: nothing
/// range-proven (type-structural widths only), no latch facts.
fn give_up(carried: &[(String, Ty)], skip_latch: bool) -> DepCertificate {
    DepCertificate {
        carried: carried
            .iter()
            .map(|(name, ty)| CarriedCert {
                name: name.clone(),
                ty: *ty,
                range: ValueRange::Unbounded,
                width: width_for(*ty, ValueRange::Unbounded),
                mono: Monotonicity::Unknown,
            })
            .collect(),
        skip_latch,
        stable_breaks: false,
    }
}

/// Runs the abstract interpretation on an (uninstrumented) UDF and emits
/// the certificate for the given carried-local set.
///
/// `schema` optionally types the property arrays (a `bool` property read
/// is then known to be `[0, 1]`); pass an empty slice when no schema is
/// at hand — every certificate stays sound, only possibly wider.
/// `skip_latch` records whether the instrumentation this certificate
/// will be attached to guards the segment with an early-returning skip
/// check (true for the analyzer's minimized form, false for naive
/// instrumentation, keeping the naive wire format byte-identical to the
/// uncertified engine).
pub fn certify(
    udf: &UdfFn,
    carried: &[(String, Ty)],
    schema: &[(String, Ty)],
    skip_latch: bool,
) -> DepCertificate {
    let cfg = Cfg::build(udf);
    let pruned = cfg.prune_breaks();

    let mut tys: BTreeMap<String, Ty> = BTreeMap::new();
    collect_let_tys(&udf.body, &mut tys);
    for (name, ty) in carried {
        tys.insert(name.clone(), *ty);
    }

    let mut thresholds: BTreeSet<i64> = BTreeSet::new();
    thresholds.insert(0);
    collect_literals(&udf.body, &mut thresholds);

    let carried_map: BTreeMap<String, Ty> = carried.iter().cloned().collect();
    let mut an = Analyzer {
        cfg: &pruned,
        tys,
        schema: schema.iter().cloned().collect(),
        carried: carried_map.clone(),
        restore: carried_map
            .iter()
            .filter(|(_, ty)| ty_full(**ty).is_some())
            .map(|(name, _)| (name.clone(), Itv::point(0)))
            .collect(),
        thresholds: thresholds.into_iter().collect(),
    };

    // Outer fixpoint on the restore hypothesis: what a machine restores
    // is an earlier machine's break-free exit value (or zero).
    let mut fuel = 1usize << 14;
    fuel += 512 * pruned.node_count();
    let mut solution = None;
    for round in 0..MAX_RESTORE_ROUNDS {
        let Some(before) = an.solve(&mut fuel) else {
            return give_up(carried, skip_latch);
        };
        let exit_env = before[EXIT].clone().unwrap_or_default();
        let mut next = an.restore.clone();
        for (name, r) in &mut next {
            let ty = an.tys.get(name).copied().unwrap_or(Ty::Int);
            let full = ty_full(ty).unwrap_or(FULL_INT);
            let at_exit = exit_env.get(name).copied().unwrap_or(full);
            *r = r.join(at_exit).meet(full).unwrap_or(full);
        }
        if round >= RESTORE_WIDEN_AFTER {
            next = an.widen_env(&an.restore, &next);
        }
        if next == an.restore {
            solution = Some(before);
            break;
        }
        an.restore = next;
    }
    let Some(before) = solution else {
        return give_up(carried, skip_latch);
    };

    // Wire range = reset zero ∪ break-site snapshots ∪ break-free exit.
    let exit_env = before[EXIT].clone().unwrap_or_default();
    let ranges: BTreeMap<String, ValueRange> = carried
        .iter()
        .map(|(name, ty)| {
            let Some(full) = ty_full(*ty) else {
                return (name.clone(), ValueRange::Unbounded);
            };
            let mut wire = Itv::point(0);
            wire = wire.join(exit_env.get(name).copied().unwrap_or(full));
            for &b in cfg.breaks() {
                if let Some(env) = &before[b] {
                    wire = wire.join(env.get(name).copied().unwrap_or(full));
                }
            }
            let wire = wire.meet(full).unwrap_or(full);
            let range = if *ty == Ty::Int && wire == FULL_INT {
                ValueRange::Unbounded
            } else {
                ValueRange::Interval {
                    lo: wire.lo,
                    hi: wire.hi,
                }
            };
            (name.clone(), range)
        })
        .collect();

    // Monotonicity per carried local over its reachable loop assignments.
    let sc = scan(&udf.body);
    let mut mono: BTreeMap<String, Monotonicity> = carried
        .iter()
        .map(|(name, _)| (name.clone(), Monotonicity::Constant))
        .collect();
    for site in &sc.assigns {
        let Some(cur) = mono.get(site.name).copied() else {
            continue;
        };
        let node = cfg.node_of(site.id);
        let Some(env) = &before[node] else {
            continue; // unreachable assignment
        };
        let dir = classify_assign(&an, site, env);
        mono.insert(site.name.to_string(), join_mono(cur, dir));
    }

    // Break stability: every *reachable* break's in-loop guard chain
    // must stay triggered.
    let carried_names: BTreeSet<&str> = carried.iter().map(|(n, _)| n.as_str()).collect();
    let stable_breaks = sc.breaks.iter().all(|b| {
        let node = cfg.node_of(b.id);
        if before[node].is_none() {
            return true; // unreachable break cannot fire
        }
        b.guards.iter().all(|(g, positive)| {
            if *positive {
                let mut conjuncts = Vec::new();
                split_and(g, &mut conjuncts);
                conjuncts
                    .iter()
                    .all(|c| conjunct_stable(c, true, &mono, &carried_names, &sc.loop_assigned))
            } else {
                conjunct_stable(g, false, &mono, &carried_names, &sc.loop_assigned)
            }
        })
    });

    DepCertificate {
        carried: carried
            .iter()
            .map(|(name, ty)| {
                let range = ranges[name];
                CarriedCert {
                    name: name.clone(),
                    ty: *ty,
                    range,
                    width: width_for(*ty, range),
                    mono: mono[name],
                }
            })
            .collect(),
        skip_latch,
        stable_breaks,
    }
}

fn collect_let_tys(stmts: &[Stmt], out: &mut BTreeMap<String, Ty>) {
    for s in stmts {
        match s {
            Stmt::Let { name, ty, .. } => {
                out.insert(name.clone(), *ty);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_let_tys(then_branch, out);
                collect_let_tys(else_branch, out);
            }
            Stmt::ForNeighbors { body } => collect_let_tys(body, out),
            _ => {}
        }
    }
}

fn collect_expr_literals(e: &Expr, out: &mut BTreeSet<i64>) {
    match e {
        Expr::Lit(Value::Int(i)) => {
            out.insert(*i);
            out.insert(i.saturating_sub(1));
            out.insert(i.saturating_add(1));
        }
        Expr::Lit(_) | Expr::Local(_) | Expr::CurrentVertex | Expr::CurrentNeighbor => {}
        Expr::Prop { index, .. } => collect_expr_literals(index, out),
        Expr::Unary(_, inner) => collect_expr_literals(inner, out),
        Expr::Binary(_, l, r) => {
            collect_expr_literals(l, out);
            collect_expr_literals(r, out);
        }
    }
}

fn collect_literals(stmts: &[Stmt], out: &mut BTreeSet<i64>) {
    for s in stmts {
        match s {
            Stmt::Let { init, .. } => collect_expr_literals(init, out),
            Stmt::Assign { value, .. } => collect_expr_literals(value, out),
            Stmt::Emit(e) => collect_expr_literals(e, out),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                collect_expr_literals(cond, out);
                collect_literals(then_branch, out);
                collect_literals(else_branch, out);
            }
            Stmt::ForNeighbors { body } => collect_literals(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_udfs::*;

    fn int(name: &str) -> Vec<(String, Ty)> {
        vec![(name.to_string(), Ty::Int)]
    }

    #[test]
    fn kcore_counter_certifies_narrow() {
        let cert = certify(&kcore_udf(4), &int("cnt"), &[], true);
        assert_eq!(cert.carried.len(), 1);
        let c = &cert.carried[0];
        assert_eq!(c.range, ValueRange::Interval { lo: 0, hi: 4 });
        assert_eq!(c.width, 1);
        assert_eq!(c.mono, Monotonicity::NonDecreasing);
        assert!(cert.stable_breaks, "cnt >= k latches: cnt only grows");
        assert!(cert.latches());
    }

    #[test]
    fn kcore_large_k_still_narrow_via_thresholds() {
        // k = 200 needs more loop-head visits than the widening delay;
        // threshold widening (to the literal 200's neighbourhood) plus
        // narrowing keeps the bound tight instead of jumping to i64::MAX.
        let cert = certify(&kcore_udf(200), &int("cnt"), &[], true);
        let c = &cert.carried[0];
        assert_eq!(c.range, ValueRange::Interval { lo: 0, hi: 200 });
        assert_eq!(c.width, 2, "[0, 200] needs two signed bytes");
        assert!(cert.latches());
        let small = certify(&kcore_udf(100), &int("cnt"), &[], true);
        assert_eq!(small.carried[0].width, 1, "[0, 100] fits one signed byte");
    }

    #[test]
    fn sampling_float_is_unbounded_and_unstable() {
        let cert = certify(
            &sampling_udf(),
            &[("acc".to_string(), Ty::Float)],
            &[],
            true,
        );
        let c = &cert.carried[0];
        assert_eq!(c.range, ValueRange::Unbounded);
        assert_eq!(c.width, 8);
        assert_eq!(
            c.mono,
            Monotonicity::Unknown,
            "float weights may be negative"
        );
        assert!(!cert.stable_breaks, "acc >= r[v] may un-trigger (W008)");
        assert!(!cert.latches());
    }

    #[test]
    fn sssp_and_pagerank_are_wide_but_vacuously_stable() {
        for (udf, name) in [(sssp_udf(), "best"), (pagerank_udf(), "acc")] {
            let cert = certify(&udf, &int(name), &[], true);
            assert_eq!(cert.carried[0].range, ValueRange::Unbounded, "{name}");
            assert_eq!(cert.carried[0].width, 8);
            assert!(cert.stable_breaks, "no reachable breaks: vacuous");
        }
    }

    #[test]
    fn cc_min_fold_is_nonincreasing_and_stable() {
        let cert = certify(&cc_udf(), &int("best"), &[], true);
        let c = &cert.carried[0];
        assert_eq!(c.width, 8, "label[u] is an unbounded int property");
        assert_eq!(
            c.mono,
            Monotonicity::NonIncreasing,
            "best = label[u] under label[u] < best"
        );
        assert!(
            cert.stable_breaks,
            "best < 1 latches: best only decreases; label[u] < best is a selector"
        );
        assert!(cert.latches());
    }

    #[test]
    fn control_only_kernels_are_stable() {
        // bfs/mis/kmeans carry nothing; their break guards read only
        // u-indexed properties (frozen during a pass).
        for udf in [bfs_udf(), mis_udf(), kmeans_udf()] {
            let cert = certify(&udf, &[], &[], true);
            assert!(cert.carried.is_empty());
            assert!(cert.stable_breaks, "{}", udf.name);
            assert!(cert.latches(), "{}", udf.name);
        }
    }

    #[test]
    fn branch_refinement_bounds_a_guarded_assign() {
        use crate::ast::{Expr, Stmt};
        // x is only ever rewritten to 7 while x < 3 — so x stays small:
        // wire range [0, 7].
        let udf = UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("x", Ty::Int, Expr::i(0)),
                Stmt::for_neighbors(vec![Stmt::if_(
                    Expr::local("x").lt(Expr::i(3)),
                    vec![Stmt::assign("x", Expr::i(7))],
                )]),
                Stmt::Emit(Expr::local("x")),
            ],
        );
        let cert = certify(&udf, &int("x"), &[], true);
        assert_eq!(cert.carried[0].range, ValueRange::Interval { lo: 0, hi: 7 });
        assert_eq!(cert.carried[0].width, 1);
    }

    #[test]
    fn schema_bounds_bool_property_reads() {
        use crate::ast::{Expr, Stmt};
        // acc sums a bool property: with the schema the delta is [0, 1]
        // per neighbour — monotone non-decreasing; without it the read
        // is unknown.
        let udf = UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("acc", Ty::Int, Expr::i(0)),
                Stmt::for_neighbors(vec![Stmt::assign(
                    "acc",
                    Expr::local("acc").add(Expr::prop_u("flag")),
                )]),
                Stmt::Emit(Expr::local("acc")),
            ],
        );
        let schema = vec![("flag".to_string(), Ty::Bool)];
        let with = certify(&udf, &int("acc"), &schema, true);
        assert_eq!(with.carried[0].mono, Monotonicity::NonDecreasing);
        let without = certify(&udf, &int("acc"), &[], true);
        assert_eq!(without.carried[0].mono, Monotonicity::Unknown);
    }

    #[test]
    fn bool_and_vertex_carried_narrow_structurally() {
        use crate::ast::{Expr, Stmt};
        let udf = UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("seen", Ty::Bool, Expr::b(false)),
                Stmt::for_neighbors(vec![Stmt::if_(
                    Expr::prop_u("p"),
                    vec![Stmt::assign("seen", Expr::b(true)), Stmt::Break],
                )]),
            ],
        );
        let cert = certify(&udf, &[("seen".to_string(), Ty::Bool)], &[], true);
        assert_eq!(cert.carried[0].width, 1);
        assert_eq!(cert.carried[0].mono, Monotonicity::NonDecreasing);
        assert!(cert.stable_breaks);
    }
}
