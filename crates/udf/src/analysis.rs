//! Pass 1 of the analyzer (paper §4.2): locate the neighbour loop, decide
//! whether loop-carried dependency exists, and identify the dependency
//! state.
//!
//! * **Control dependency**: a `break` statement reachable inside the
//!   neighbour loop — "there is at least one break statement related to
//!   the for-loop" (§4.2 1.b.3).
//! * **Data dependency**: locals declared before the loop whose values
//!   flow across iterations — assigned inside the loop and read again
//!   (inside the loop or after it). These become the `DepMessage` data
//!   members (§4.1): K-core's counter, sampling's prefix sum.
//!
//! Two analyzers are exposed. [`analyze_naive`] is the paper's purely
//! syntactic rule. [`analyze`] refines it with the dataflow engine in
//! [`crate::cfg`]/[`crate::dataflow`]:
//!
//! * **Carried-state minimization.** A syntactically carried local is
//!   dropped from the wire when shipping it cannot change any observable
//!   value. `x` stays carried only if it is *live* at its restore point
//!   (the `let` the instrumentation rewrites) **and** either some
//!   assignment to it survives to a break-free exit (reaching definitions
//!   over the break-pruned CFG) or its initialiser is not the zero value
//!   the first segment restores. See DESIGN.md §11 for the soundness
//!   argument under circulant scheduling.
//! * **Dead-dependency elimination.** Constant propagation plus branch
//!   pruning can prove every `break` unreachable, in which case the UDF is
//!   downgraded to [`DepKind::None`] and no dependency is circulated at
//!   all ([`effective_policy`] then drops the SympleGraph machinery).

use std::collections::BTreeSet;

use crate::ast::{Expr, Stmt, UdfFn};
use crate::certificate::DepCertificate;
use crate::cfg::Cfg;
use crate::dataflow::{const_eval, solve, Const, ConstProp, Liveness, ReachingDefs};
use crate::types::{Ty, Value};
use crate::UdfError;
use symple_core::Policy;

/// What kind of loop-carried dependency a UDF has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// No neighbour loop, or no (reachable) break: nothing to enforce.
    None,
    /// Break only — the dependency message is a single skip bit.
    Control,
    /// Break plus carried locals — the message also carries their values.
    Data,
}

/// Analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct DepInfo {
    /// Dependency classification.
    pub kind: DepKind,
    /// Carried locals `(name, type)`, in declaration order.
    pub carried: Vec<(String, Ty)>,
    /// Number of `break` statements inside the neighbour loop
    /// (syntactic count, independent of reachability).
    pub breaks: usize,
    /// Breaks the dataflow analysis could not prove unreachable. When this
    /// is zero the dependency is dead and `kind` is [`DepKind::None`].
    pub reachable_breaks: usize,
    /// Abstract-interpretation certificate: value ranges and
    /// monotonicity/latch facts for the carried locals ([`crate::absint`]).
    /// [`analyze`] attaches real inferred facts; [`analyze_naive`] attaches
    /// the inert wide certificate so naive instrumentation keeps the
    /// uncertified wire format.
    pub cert: DepCertificate,
}

impl DepInfo {
    /// Shorthand: does any dependency exist?
    pub fn has_dependency(&self) -> bool {
        self.kind != DepKind::None
    }

    fn none(breaks: usize) -> Self {
        DepInfo {
            kind: DepKind::None,
            carried: Vec::new(),
            breaks,
            reachable_breaks: 0,
            cert: DepCertificate::default(),
        }
    }
}

/// The scheduling policy a dependency analysis actually requires.
///
/// SympleGraph's circulant scheduling and mirror→mirror dependency
/// circulation only pay off when the UDF has a loop-carried dependency; for
/// a [`DepKind::None`] UDF the whole apparatus is dead weight (and dep
/// messages would still be exchanged every round). This helper downgrades a
/// SympleGraph policy to plain Gemini-style edge placement in that case and
/// leaves every other request untouched.
pub fn effective_policy(info: &DepInfo, requested: Policy) -> Policy {
    if info.has_dependency() || !requested.propagates_dependency() {
        requested
    } else {
        Policy::Gemini
    }
}

/// Analyzes a UDF for loop-carried dependency, with dataflow-based
/// carried-state minimization and dead-dependency elimination.
///
/// The carried set is a subset of [`analyze_naive`]'s: instrumenting with
/// either produces bit-identical outputs and work counters, but this one
/// ships fewer bytes per `DepMessage`.
///
/// # Errors
///
/// Returns [`UdfError::NestedLoop`] if neighbour loops nest, and
/// [`UdfError::AlreadyInstrumented`] if instrumentation nodes are present.
///
/// # Example
///
/// ```
/// use symple_udf::{analyze, DepKind};
/// let udf = symple_udf::paper_udfs::bfs_udf();
/// let info = analyze(&udf).unwrap();
/// assert_eq!(info.kind, DepKind::Control);
/// assert_eq!(info.breaks, 1);
/// ```
pub fn analyze(udf: &UdfFn) -> Result<DepInfo, UdfError> {
    let naive = analyze_naive(udf)?;
    if !naive.has_dependency() {
        return Ok(naive);
    }

    let cfg = Cfg::build(udf);
    let carried_names: BTreeSet<String> = naive.carried.iter().map(|(n, _)| n.clone()).collect();

    // Constant propagation, distrusting the initialisers of carried locals:
    // instrumentation rewrites those `let`s into wire restores, so their
    // run-time value is whatever the previous machine shipped.
    let consts = solve(
        &cfg,
        &ConstProp {
            untrusted_lets: carried_names.clone(),
        },
    );
    let const_branch = |node| match cfg.stmt_of(node).map(|id| cfg.stmt(id)) {
        Some(Stmt::If { cond, .. }) => match const_eval(cond, &consts.before[node]) {
            Some(Const::Val(Value::Bool(b))) => Some(b),
            _ => None,
        },
        _ => None,
    };

    // Dead-dependency elimination, step 1: a break pruned away by constant
    // branches (or plain unreachability) can never fire, so the *skip*
    // half of the dependency is dead. Whether circulation can stop
    // entirely also depends on the carried state being unobservable — see
    // below.
    let reachable = cfg.reachable(const_branch);
    let reachable_breaks = cfg.breaks().iter().filter(|&&b| reachable[b]).count();

    // Carried-state minimization. Keep x iff
    //   Live(x at its restore point)  ∧  (Mod(x) ∨ ¬InitZero(x))
    // where Mod means an assignment to x reaches a break-free exit (the only
    // exits whose snapshot downstream machines observe) and InitZero means
    // the initialiser provably equals the zero value the first segment's
    // restore produces.
    let live = solve(
        &cfg,
        &Liveness {
            exit_live: carried_names,
        },
    );
    let pruned = cfg.prune_breaks();
    let rd = solve(&pruned, &ReachingDefs);
    let rd_exit = &rd.before[crate::cfg::EXIT];

    let carried = naive
        .carried
        .iter()
        .filter(|(name, ty)| {
            let Some(let_id) = (0..cfg.num_stmts())
                .find(|&id| matches!(cfg.stmt(id), Stmt::Let { name: n, .. } if n == name))
            else {
                return true; // defensive: no declaration found, keep it
            };
            let node = cfg.node_of(let_id);
            let is_live = live.after[node].contains(name);
            let modified = rd_exit
                .iter()
                .any(|(n, d)| n == name && matches!(cfg.stmt(*d), Stmt::Assign { .. }));
            let init_zero = match cfg.stmt(let_id) {
                Stmt::Let { init, .. } => init_is_zero(init, &consts.before[node], *ty),
                _ => false,
            };
            is_live && (modified || !init_zero)
        })
        .cloned()
        .collect::<Vec<_>>();

    // Dead-dependency elimination, step 2: circulation may stop entirely
    // only if no break can fire (no machine ever skips) AND the minimized
    // carried set is empty (the restore writes only values that are dead
    // or bit-identical to the zero-init, so downstream segments cannot
    // observe whether circulation happened). A UDF that accumulates into a
    // live local keeps its Data dependency even with all breaks dead:
    // under circulant scheduling later segments observe the prefix value.
    if reachable_breaks == 0 && carried.is_empty() {
        return Ok(DepInfo::none(naive.breaks));
    }

    // Abstract interpretation over the minimized carried set: value
    // ranges for width-narrowed wire encoding and monotonicity/latch
    // facts for certified early-exit. The minimized instrumentation
    // guards the body with an early-returning skip check, so the
    // structural latch holds.
    let cert = crate::absint::certify(udf, &carried, &[], true);

    Ok(DepInfo {
        kind: if carried.is_empty() {
            DepKind::Control
        } else {
            DepKind::Data
        },
        carried,
        breaks: naive.breaks,
        reachable_breaks,
        cert,
    })
}

/// Does `init` provably evaluate to `Value::zero(ty)` — the value the first
/// circulant segment's restore produces for a carried local?
fn init_is_zero(init: &Expr, env: &std::collections::BTreeMap<String, Const>, ty: Ty) -> bool {
    match const_eval(init, env) {
        Some(Const::Val(v)) => {
            let zero = Value::zero(ty);
            v.ty() == zero.ty() && v.to_bits() == zero.to_bits()
        }
        _ => false,
    }
}

/// The paper's purely syntactic dependency analysis (§4.2): every pre-loop
/// local assigned inside the loop and read again is carried, and any
/// syntactic `break` makes the dependency real.
///
/// # Errors
///
/// Same contract as [`analyze`].
pub fn analyze_naive(udf: &UdfFn) -> Result<DepInfo, UdfError> {
    // refuse pre-instrumented input
    if block_contains(&udf.body, &|s| {
        matches!(s, Stmt::ReceiveDepGuard | Stmt::EmitDep)
    }) {
        return Err(UdfError::AlreadyInstrumented);
    }
    check_no_nesting(&udf.body, false)?;

    let Some(loop_body) = find_loop(&udf.body) else {
        return Ok(DepInfo::none(0));
    };
    let breaks = count_breaks(loop_body);
    if breaks == 0 {
        return Ok(DepInfo::none(0));
    }

    // locals declared before the loop, in declaration order
    let pre_loop_locals = locals_before_loop(&udf.body);
    let mut carried = Vec::new();
    for (name, ty) in pre_loop_locals {
        let assigned_in_loop = block_contains(loop_body, &|s| match s {
            Stmt::Assign { name: n, .. } => *n == name,
            _ => false,
        });
        if !assigned_in_loop {
            continue;
        }
        let read_in_loop = block_reads(loop_body, &name);
        let read_after = reads_after_loop(&udf.body, &name);
        if read_in_loop || read_after {
            carried.push((name, ty));
        }
    }

    Ok(DepInfo {
        kind: if carried.is_empty() {
            DepKind::Control
        } else {
            DepKind::Data
        },
        cert: DepCertificate::wide(&carried),
        carried,
        breaks,
        reachable_breaks: breaks,
    })
}

/// Finds the (first) neighbour loop body anywhere in a block.
fn find_loop(block: &[Stmt]) -> Option<&[Stmt]> {
    for s in block {
        match s {
            Stmt::ForNeighbors { body } => return Some(body),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(b) = find_loop(then_branch).or_else(|| find_loop(else_branch)) {
                    return Some(b);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_no_nesting(block: &[Stmt], in_loop: bool) -> Result<(), UdfError> {
    for s in block {
        match s {
            Stmt::ForNeighbors { body } => {
                if in_loop {
                    return Err(UdfError::NestedLoop);
                }
                check_no_nesting(body, true)?;
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                check_no_nesting(then_branch, in_loop)?;
                check_no_nesting(else_branch, in_loop)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn count_breaks(block: &[Stmt]) -> usize {
    block
        .iter()
        .map(|s| match s {
            Stmt::Break => 1,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => count_breaks(then_branch) + count_breaks(else_branch),
            _ => 0,
        })
        .sum()
}

/// Top-level `let`s lexically before the neighbour loop.
fn locals_before_loop(block: &[Stmt]) -> Vec<(String, Ty)> {
    let mut out = Vec::new();
    for s in block {
        match s {
            Stmt::Let { name, ty, .. } => out.push((name.clone(), *ty)),
            Stmt::ForNeighbors { .. } => break,
            _ => {}
        }
    }
    out
}

/// Does any statement in (or under) `block` satisfy `pred`?
fn block_contains(block: &[Stmt], pred: &dyn Fn(&Stmt) -> bool) -> bool {
    block.iter().any(|s| {
        pred(s)
            || match s {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => block_contains(then_branch, pred) || block_contains(else_branch, pred),
                Stmt::ForNeighbors { body } => block_contains(body, pred),
                _ => false,
            }
    })
}

/// Does any expression in `block` read local `name`?
fn block_reads(block: &[Stmt], name: &str) -> bool {
    block.iter().any(|s| stmt_reads(s, name))
}

fn stmt_reads(s: &Stmt, name: &str) -> bool {
    match s {
        Stmt::Let { init, .. } => expr_reads(init, name),
        Stmt::Assign { value, .. } => expr_reads(value, name),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_reads(cond, name)
                || block_reads(then_branch, name)
                || block_reads(else_branch, name)
        }
        Stmt::ForNeighbors { body } => block_reads(body, name),
        Stmt::Emit(e) => expr_reads(e, name),
        Stmt::Break | Stmt::Return | Stmt::ReceiveDepGuard | Stmt::EmitDep => false,
    }
}

fn expr_reads(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Local(n) => n == name,
        Expr::Prop { index, .. } => expr_reads(index, name),
        Expr::Unary(_, a) => expr_reads(a, name),
        Expr::Binary(_, a, b) => expr_reads(a, name) || expr_reads(b, name),
        Expr::Lit(_) | Expr::CurrentVertex | Expr::CurrentNeighbor => false,
    }
}

/// Is `name` read in statements after the neighbour loop?
fn reads_after_loop(block: &[Stmt], name: &str) -> bool {
    let mut seen_loop = false;
    for s in block {
        if seen_loop && stmt_reads(s, name) {
            return true;
        }
        if matches!(s, Stmt::ForNeighbors { .. }) {
            seen_loop = true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_udfs;

    #[test]
    fn bfs_is_control_only() {
        let info = analyze(&paper_udfs::bfs_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Control);
        assert!(info.carried.is_empty());
        assert_eq!(info.breaks, 1);
        assert_eq!(info.reachable_breaks, 1);
    }

    #[test]
    fn mis_is_control_only() {
        let info = analyze(&paper_udfs::mis_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Control);
    }

    #[test]
    fn kmeans_is_control_only() {
        let info = analyze(&paper_udfs::kmeans_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Control);
    }

    #[test]
    fn kcore_carries_its_counter() {
        let info = analyze(&paper_udfs::kcore_udf(4)).unwrap();
        assert_eq!(info.kind, DepKind::Data);
        let names: Vec<&str> = info.carried.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"cnt"), "carried: {names:?}");
        assert!(
            !names.contains(&"start"),
            "start is assigned only outside the loop: {names:?}"
        );
    }

    #[test]
    fn kcore_done_flag_is_minimized_away() {
        // Naively, `done` is carried: assigned in the loop and read in the
        // suffix. But the only assignment is immediately followed by
        // `break`, so its value can never survive to a no-break snapshot —
        // downstream machines always observe `false`, which is also what
        // the first segment restores. The dataflow analyzer drops it.
        let naive = analyze_naive(&paper_udfs::kcore_udf(4)).unwrap();
        let min = analyze(&paper_udfs::kcore_udf(4)).unwrap();
        let naive_names: Vec<&str> = naive.carried.iter().map(|(n, _)| n.as_str()).collect();
        let min_names: Vec<&str> = min.carried.iter().map(|(n, _)| n.as_str()).collect();
        assert!(naive_names.contains(&"done"), "naive: {naive_names:?}");
        assert!(!min_names.contains(&"done"), "minimized: {min_names:?}");
        assert_eq!(min_names, vec!["cnt"]);
    }

    #[test]
    fn sampling_carries_the_prefix_sum() {
        let info = analyze(&paper_udfs::sampling_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Data);
        assert_eq!(info.carried[0].0, "acc");
        assert_eq!(info.carried[0].1, Ty::Float);
    }

    #[test]
    fn minimized_carried_is_subset_of_naive() {
        for udf in [
            paper_udfs::bfs_udf(),
            paper_udfs::mis_udf(),
            paper_udfs::kmeans_udf(),
            paper_udfs::kcore_udf(4),
            paper_udfs::sampling_udf(),
        ] {
            let naive = analyze_naive(&udf).unwrap();
            let min = analyze(&udf).unwrap();
            for c in &min.carried {
                assert!(
                    naive.carried.contains(c),
                    "{}: {c:?} not in naive",
                    udf.name
                );
            }
            assert!(min.carried.len() <= naive.carried.len());
        }
    }

    #[test]
    fn loop_without_break_has_no_dependency() {
        use crate::ast::{Expr, Stmt, UdfFn};
        // sum all neighbour weights, emit once — no break
        let udf = UdfFn::new(
            "sum",
            Ty::Float,
            vec![
                Stmt::let_("s", Ty::Float, Expr::f(0.0)),
                Stmt::for_neighbors(vec![Stmt::assign(
                    "s",
                    Expr::local("s").add(Expr::prop_u("weight")),
                )]),
                Stmt::Emit(Expr::local("s")),
            ],
        );
        let info = analyze(&udf).unwrap();
        assert_eq!(info.kind, DepKind::None);
        assert!(!info.has_dependency());
    }

    #[test]
    fn provably_unreachable_break_kills_the_dependency() {
        use crate::ast::{Expr, Stmt, UdfFn};
        // The break is guarded by a flag that is never set: constant
        // propagation proves `if (dbg)` always false, so the dependency is
        // dead even though a break exists syntactically. The carried flag
        // `done` is only assigned on the dead break path and is zero-init,
        // so the minimized carried set is empty and circulation can stop.
        let udf = UdfFn::new(
            "bounded",
            Ty::Int,
            vec![
                Stmt::let_("dbg", Ty::Bool, Expr::b(false)),
                Stmt::let_("done", Ty::Bool, Expr::b(false)),
                Stmt::for_neighbors(vec![
                    Stmt::Emit(Expr::i(1)),
                    Stmt::if_(
                        Expr::local("dbg"),
                        vec![Stmt::assign("done", Expr::b(true)), Stmt::Break],
                    ),
                ]),
                Stmt::if_(Expr::local("done").not(), vec![Stmt::Emit(Expr::i(0))]),
            ],
        );
        let naive = analyze_naive(&udf).unwrap();
        assert_eq!(naive.kind, DepKind::Data, "syntactically a dependency");
        let info = analyze(&udf).unwrap();
        assert_eq!(info.kind, DepKind::None);
        assert_eq!(info.breaks, 1, "syntactic count preserved");
        assert_eq!(info.reachable_breaks, 0);
        assert!(info.carried.is_empty());
    }

    #[test]
    fn dead_break_with_observable_accumulator_keeps_data_dependency() {
        use crate::ast::{Expr, Stmt, UdfFn};
        // All breaks are dead, but `s` accumulates across the loop and is
        // emitted afterwards: under circulant scheduling later segments
        // observe the restored prefix value, so circulation must continue.
        let udf = UdfFn::new(
            "prefix",
            Ty::Int,
            vec![
                Stmt::let_("dbg", Ty::Bool, Expr::b(false)),
                Stmt::let_("s", Ty::Int, Expr::i(0)),
                Stmt::for_neighbors(vec![
                    Stmt::assign("s", Expr::local("s").add(Expr::i(1))),
                    Stmt::if_(Expr::local("dbg"), vec![Stmt::Break]),
                ]),
                Stmt::Emit(Expr::local("s")),
            ],
        );
        let info = analyze(&udf).unwrap();
        assert_eq!(info.kind, DepKind::Data);
        assert_eq!(info.reachable_breaks, 0);
        assert_eq!(info.carried, vec![("s".to_string(), Ty::Int)]);
    }

    #[test]
    fn effective_policy_downgrades_dead_dependency() {
        let dead = DepInfo::none(1);
        assert_eq!(effective_policy(&dead, Policy::symple()), Policy::Gemini);
        assert_eq!(effective_policy(&dead, Policy::Galois), Policy::Galois);
        let live = DepInfo {
            kind: DepKind::Control,
            carried: Vec::new(),
            breaks: 1,
            reachable_breaks: 1,
            cert: DepCertificate::default(),
        };
        assert_eq!(effective_policy(&live, Policy::symple()), Policy::symple());
    }

    #[test]
    fn no_loop_no_dependency() {
        use crate::ast::{Expr, Stmt, UdfFn};
        let udf = UdfFn::new("t", Ty::Bool, vec![Stmt::Emit(Expr::b(true))]);
        assert_eq!(analyze(&udf).unwrap().kind, DepKind::None);
    }

    #[test]
    fn nested_loops_rejected() {
        use crate::ast::{Stmt, UdfFn};
        let udf = UdfFn::new(
            "bad",
            Ty::Bool,
            vec![Stmt::for_neighbors(vec![Stmt::for_neighbors(vec![])])],
        );
        assert_eq!(analyze(&udf), Err(UdfError::NestedLoop));
    }

    #[test]
    fn instrumented_input_rejected() {
        use crate::ast::{Stmt, UdfFn};
        let udf = UdfFn::new("x", Ty::Bool, vec![Stmt::ReceiveDepGuard]);
        assert_eq!(analyze(&udf), Err(UdfError::AlreadyInstrumented));
    }

    #[test]
    fn non_zero_init_stays_carried_even_if_unmodified_on_no_break_paths() {
        use crate::ast::{Expr, Stmt, UdfFn};
        // `lim` starts at 5 and is only zeroed right before breaking. No
        // assignment reaches a break-free exit, but its init is non-zero —
        // dropping it would make the first segment see 0 instead of 5.
        let udf = UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("lim", Ty::Int, Expr::i(5)),
                Stmt::for_neighbors(vec![Stmt::if_(
                    Expr::prop_u("p").and(Expr::local("lim").ge(Expr::i(1))),
                    vec![Stmt::assign("lim", Expr::i(0)), Stmt::Break],
                )]),
                Stmt::Emit(Expr::local("lim")),
            ],
        );
        let info = analyze(&udf).unwrap();
        let names: Vec<&str> = info.carried.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["lim"]);
    }
}
