//! Pass 1 of the analyzer (paper §4.2): locate the neighbour loop, decide
//! whether loop-carried dependency exists, and identify the dependency
//! state.
//!
//! * **Control dependency**: a `break` statement reachable inside the
//!   neighbour loop — "there is at least one break statement related to
//!   the for-loop" (§4.2 1.b.3).
//! * **Data dependency**: locals declared before the loop whose values
//!   flow across iterations — assigned inside the loop and read again
//!   (inside the loop or after it). These become the `DepMessage` data
//!   members (§4.1): K-core's counter, sampling's prefix sum.

use crate::ast::{Expr, Stmt, UdfFn};
use crate::types::Ty;
use crate::UdfError;

/// What kind of loop-carried dependency a UDF has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// No neighbour loop, or no break: nothing to enforce.
    None,
    /// Break only — the dependency message is a single skip bit.
    Control,
    /// Break plus carried locals — the message also carries their values.
    Data,
}

/// Analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct DepInfo {
    /// Dependency classification.
    pub kind: DepKind,
    /// Carried locals `(name, type)`, in declaration order.
    pub carried: Vec<(String, Ty)>,
    /// Number of `break` statements inside the neighbour loop.
    pub breaks: usize,
}

impl DepInfo {
    /// Shorthand: does any dependency exist?
    pub fn has_dependency(&self) -> bool {
        self.kind != DepKind::None
    }
}

/// Analyzes a UDF for loop-carried dependency.
///
/// # Errors
///
/// Returns [`UdfError::NestedLoop`] if neighbour loops nest, and
/// [`UdfError::AlreadyInstrumented`] if instrumentation nodes are present.
///
/// # Example
///
/// ```
/// use symple_udf::{analyze, DepKind};
/// let udf = symple_udf::paper_udfs::bfs_udf();
/// let info = analyze(&udf).unwrap();
/// assert_eq!(info.kind, DepKind::Control);
/// assert_eq!(info.breaks, 1);
/// ```
pub fn analyze(udf: &UdfFn) -> Result<DepInfo, UdfError> {
    // refuse pre-instrumented input
    if block_contains(&udf.body, &|s| {
        matches!(s, Stmt::ReceiveDepGuard | Stmt::EmitDep)
    }) {
        return Err(UdfError::AlreadyInstrumented);
    }
    check_no_nesting(&udf.body, false)?;

    let Some(loop_body) = find_loop(&udf.body) else {
        return Ok(DepInfo {
            kind: DepKind::None,
            carried: Vec::new(),
            breaks: 0,
        });
    };
    let breaks = count_breaks(loop_body);
    if breaks == 0 {
        return Ok(DepInfo {
            kind: DepKind::None,
            carried: Vec::new(),
            breaks: 0,
        });
    }

    // locals declared before the loop, in declaration order
    let pre_loop_locals = locals_before_loop(&udf.body);
    let mut carried = Vec::new();
    for (name, ty) in pre_loop_locals {
        let assigned_in_loop = block_contains(loop_body, &|s| match s {
            Stmt::Assign { name: n, .. } => *n == name,
            _ => false,
        });
        if !assigned_in_loop {
            continue;
        }
        let read_in_loop = block_reads(loop_body, &name);
        let read_after = reads_after_loop(&udf.body, &name);
        if read_in_loop || read_after {
            carried.push((name, ty));
        }
    }

    Ok(DepInfo {
        kind: if carried.is_empty() {
            DepKind::Control
        } else {
            DepKind::Data
        },
        carried,
        breaks,
    })
}

/// Finds the (first) neighbour loop body anywhere in a block.
fn find_loop(block: &[Stmt]) -> Option<&[Stmt]> {
    for s in block {
        match s {
            Stmt::ForNeighbors { body } => return Some(body),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(b) = find_loop(then_branch).or_else(|| find_loop(else_branch)) {
                    return Some(b);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_no_nesting(block: &[Stmt], in_loop: bool) -> Result<(), UdfError> {
    for s in block {
        match s {
            Stmt::ForNeighbors { body } => {
                if in_loop {
                    return Err(UdfError::NestedLoop);
                }
                check_no_nesting(body, true)?;
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                check_no_nesting(then_branch, in_loop)?;
                check_no_nesting(else_branch, in_loop)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn count_breaks(block: &[Stmt]) -> usize {
    block
        .iter()
        .map(|s| match s {
            Stmt::Break => 1,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => count_breaks(then_branch) + count_breaks(else_branch),
            _ => 0,
        })
        .sum()
}

/// Top-level `let`s lexically before the neighbour loop.
fn locals_before_loop(block: &[Stmt]) -> Vec<(String, Ty)> {
    let mut out = Vec::new();
    for s in block {
        match s {
            Stmt::Let { name, ty, .. } => out.push((name.clone(), *ty)),
            Stmt::ForNeighbors { .. } => break,
            _ => {}
        }
    }
    out
}

/// Does any statement in (or under) `block` satisfy `pred`?
fn block_contains(block: &[Stmt], pred: &dyn Fn(&Stmt) -> bool) -> bool {
    block.iter().any(|s| {
        pred(s)
            || match s {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => block_contains(then_branch, pred) || block_contains(else_branch, pred),
                Stmt::ForNeighbors { body } => block_contains(body, pred),
                _ => false,
            }
    })
}

/// Does any expression in `block` read local `name`?
fn block_reads(block: &[Stmt], name: &str) -> bool {
    block.iter().any(|s| stmt_reads(s, name))
}

fn stmt_reads(s: &Stmt, name: &str) -> bool {
    match s {
        Stmt::Let { init, .. } => expr_reads(init, name),
        Stmt::Assign { value, .. } => expr_reads(value, name),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_reads(cond, name)
                || block_reads(then_branch, name)
                || block_reads(else_branch, name)
        }
        Stmt::ForNeighbors { body } => block_reads(body, name),
        Stmt::Emit(e) => expr_reads(e, name),
        Stmt::Break | Stmt::Return | Stmt::ReceiveDepGuard | Stmt::EmitDep => false,
    }
}

fn expr_reads(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Local(n) => n == name,
        Expr::Prop { index, .. } => expr_reads(index, name),
        Expr::Unary(_, a) => expr_reads(a, name),
        Expr::Binary(_, a, b) => expr_reads(a, name) || expr_reads(b, name),
        Expr::Lit(_) | Expr::CurrentVertex | Expr::CurrentNeighbor => false,
    }
}

/// Is `name` read in statements after the neighbour loop?
fn reads_after_loop(block: &[Stmt], name: &str) -> bool {
    let mut seen_loop = false;
    for s in block {
        if seen_loop && stmt_reads(s, name) {
            return true;
        }
        if matches!(s, Stmt::ForNeighbors { .. }) {
            seen_loop = true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_udfs;

    #[test]
    fn bfs_is_control_only() {
        let info = analyze(&paper_udfs::bfs_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Control);
        assert!(info.carried.is_empty());
        assert_eq!(info.breaks, 1);
    }

    #[test]
    fn mis_is_control_only() {
        let info = analyze(&paper_udfs::mis_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Control);
    }

    #[test]
    fn kmeans_is_control_only() {
        let info = analyze(&paper_udfs::kmeans_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Control);
    }

    #[test]
    fn kcore_carries_its_counter() {
        let info = analyze(&paper_udfs::kcore_udf(4)).unwrap();
        assert_eq!(info.kind, DepKind::Data);
        let names: Vec<&str> = info.carried.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"cnt"), "carried: {names:?}");
        assert!(
            !names.contains(&"start"),
            "start is assigned only outside the loop: {names:?}"
        );
    }

    #[test]
    fn sampling_carries_the_prefix_sum() {
        let info = analyze(&paper_udfs::sampling_udf()).unwrap();
        assert_eq!(info.kind, DepKind::Data);
        assert_eq!(info.carried[0].0, "acc");
        assert_eq!(info.carried[0].1, Ty::Float);
    }

    #[test]
    fn loop_without_break_has_no_dependency() {
        use crate::ast::{Expr, Stmt, UdfFn};
        // sum all neighbour weights, emit once — no break
        let udf = UdfFn::new(
            "sum",
            Ty::Float,
            vec![
                Stmt::let_("s", Ty::Float, Expr::f(0.0)),
                Stmt::for_neighbors(vec![Stmt::assign(
                    "s",
                    Expr::local("s").add(Expr::prop_u("weight")),
                )]),
                Stmt::Emit(Expr::local("s")),
            ],
        );
        let info = analyze(&udf).unwrap();
        assert_eq!(info.kind, DepKind::None);
        assert!(!info.has_dependency());
    }

    #[test]
    fn no_loop_no_dependency() {
        use crate::ast::{Expr, Stmt, UdfFn};
        let udf = UdfFn::new("t", Ty::Bool, vec![Stmt::Emit(Expr::b(true))]);
        assert_eq!(analyze(&udf).unwrap().kind, DepKind::None);
    }

    #[test]
    fn nested_loops_rejected() {
        use crate::ast::{Stmt, UdfFn};
        let udf = UdfFn::new(
            "bad",
            Ty::Bool,
            vec![Stmt::for_neighbors(vec![Stmt::for_neighbors(vec![])])],
        );
        assert_eq!(analyze(&udf), Err(UdfError::NestedLoop));
    }

    #[test]
    fn instrumented_input_rejected() {
        use crate::ast::{Stmt, UdfFn};
        let udf = UdfFn::new("x", Ty::Bool, vec![Stmt::ReceiveDepGuard]);
        assert_eq!(analyze(&udf), Err(UdfError::AlreadyInstrumented));
    }
}
