//! Control-flow graph over a UDF body.
//!
//! One node per statement plus synthetic `Entry`/`Exit` nodes. Statements are
//! numbered in *pre-order* (a statement before its children, `then` before
//! `else`), the same order in which the parser produces them, so [`StmtId`]s
//! here line up with the parser's [`crate::SpanMap`] and the collecting
//! checker's diagnostics.
//!
//! Edge shape (paper §4.2 control flow, one neighbour loop, no nesting):
//!
//! * `If` → entry of the `then` branch and entry of the `else` branch; both
//!   branches fall through to the statement after the `If`.
//! * `ForNeighbors` is the loop head: an edge into the body (iterate) and an
//!   edge to the statement after the loop (zero iterations / exhausted). The
//!   last body statement has a *back edge* to the head.
//! * `Break` → the statement after the enclosing loop (the interpreter runs
//!   the suffix even on the breaking machine). Break nodes are flagged so the
//!   analyses can reason about break-free paths.
//! * `Return` → `Exit`. `ReceiveDepGuard` → fall-through *and* `Exit` (the
//!   guard returns early when the incoming dependency says skip).

use crate::ast::{Stmt, UdfFn};
use crate::diag::StmtId;

/// Index of a CFG node. `0` is [`ENTRY`], `1` is [`EXIT`], and statement `s`
/// lives at node `s + 2`.
pub type NodeId = usize;

/// The synthetic entry node.
pub const ENTRY: NodeId = 0;
/// The synthetic exit node. Reached by falling off the end of the body, by
/// `return`, and by the skip arm of `ReceiveDepGuard`.
pub const EXIT: NodeId = 1;

/// Control-flow graph borrowing the statements of a [`UdfFn`].
#[derive(Debug, Clone)]
pub struct Cfg<'a> {
    stmts: Vec<&'a Stmt>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    /// For `If` nodes: `(then_entry, else_entry)`; used for branch pruning
    /// under constant propagation.
    branch_targets: Vec<Option<(NodeId, NodeId)>>,
    loop_head: Option<NodeId>,
    breaks: Vec<NodeId>,
}

/// Number of statements in the pre-order subtree rooted at `s` (including
/// `s` itself).
fn subtree_size(s: &Stmt) -> usize {
    match s {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => 1 + block_size(then_branch) + block_size(else_branch),
        Stmt::ForNeighbors { body } => 1 + block_size(body),
        _ => 1,
    }
}

fn block_size(block: &[Stmt]) -> usize {
    block.iter().map(subtree_size).sum()
}

/// Flattens a body into pre-order, the numbering shared with the parser's
/// span map.
fn flatten<'a>(block: &'a [Stmt], out: &mut Vec<&'a Stmt>) {
    for s in block {
        out.push(s);
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                flatten(then_branch, out);
                flatten(else_branch, out);
            }
            Stmt::ForNeighbors { body } => flatten(body, out),
            _ => {}
        }
    }
}

impl<'a> Cfg<'a> {
    /// Builds the CFG for `udf`'s body.
    pub fn build(udf: &'a UdfFn) -> Self {
        let mut stmts = Vec::new();
        flatten(&udf.body, &mut stmts);
        let n = stmts.len() + 2;
        let mut cfg = Cfg {
            stmts,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            branch_targets: vec![None; n],
            loop_head: None,
            breaks: Vec::new(),
        };
        let entry = cfg.wire_block(&udf.body, 0, EXIT, None);
        cfg.add_edge(ENTRY, entry);
        cfg
    }

    /// Wires edges for `block`, whose first statement has pre-order id
    /// `base`. `follow` is the node control reaches after the block; `brk`
    /// is the break target of the enclosing loop, if any. Returns the entry
    /// node of the block (`follow` when the block is empty).
    fn wire_block(
        &mut self,
        block: &'a [Stmt],
        base: StmtId,
        follow: NodeId,
        brk: Option<NodeId>,
    ) -> NodeId {
        let mut ids = Vec::with_capacity(block.len());
        let mut id = base;
        for s in block {
            ids.push(id);
            id += subtree_size(s);
        }
        let entry = if block.is_empty() { follow } else { ids[0] + 2 };
        for (i, s) in block.iter().enumerate() {
            let node = ids[i] + 2;
            let next = if i + 1 < block.len() {
                ids[i + 1] + 2
            } else {
                follow
            };
            match s {
                Stmt::Let { .. } | Stmt::Assign { .. } | Stmt::Emit(_) | Stmt::EmitDep => {
                    self.add_edge(node, next);
                }
                Stmt::Return => self.add_edge(node, EXIT),
                Stmt::ReceiveDepGuard => {
                    self.add_edge(node, next);
                    self.add_edge(node, EXIT);
                }
                Stmt::Break => {
                    // Outside a loop (ill-formed, rejected by the checker)
                    // treat it as a return so lint still gets a graph.
                    self.add_edge(node, brk.unwrap_or(EXIT));
                    self.breaks.push(node);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let then_entry = self.wire_block(then_branch, ids[i] + 1, next, brk);
                    let else_entry = self.wire_block(
                        else_branch,
                        ids[i] + 1 + block_size(then_branch),
                        next,
                        brk,
                    );
                    self.add_edge(node, then_entry);
                    self.add_edge(node, else_entry);
                    self.branch_targets[node] = Some((then_entry, else_entry));
                }
                Stmt::ForNeighbors { body } => {
                    // Body falls through to the head (back edge); `break`
                    // jumps past the loop to `next`.
                    let body_entry = self.wire_block(body, ids[i] + 1, node, Some(next));
                    self.add_edge(node, body_entry);
                    self.add_edge(node, next);
                    if self.loop_head.is_none() {
                        self.loop_head = Some(node);
                    }
                }
            }
        }
        entry
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    /// Total node count, including `Entry` and `Exit`.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of statements (pre-order ids run `0..num_stmts()`).
    pub fn num_stmts(&self) -> usize {
        self.stmts.len()
    }

    /// The statement with pre-order id `id`.
    pub fn stmt(&self, id: StmtId) -> &'a Stmt {
        self.stmts[id]
    }

    /// CFG node of statement `id`.
    pub fn node_of(&self, id: StmtId) -> NodeId {
        id + 2
    }

    /// Statement id of `node`, unless it is `Entry`/`Exit`.
    pub fn stmt_of(&self, node: NodeId) -> Option<StmtId> {
        node.checked_sub(2)
    }

    /// Successor nodes of `node`.
    pub fn succs(&self, node: NodeId) -> &[NodeId] {
        &self.succs[node]
    }

    /// Predecessor nodes of `node`.
    pub fn preds(&self, node: NodeId) -> &[NodeId] {
        &self.preds[node]
    }

    /// `(then_entry, else_entry)` for an `If` node.
    pub fn branch_targets(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        self.branch_targets[node]
    }

    /// Node of the (single) neighbour loop head, if the body has one.
    pub fn loop_head(&self) -> Option<NodeId> {
        self.loop_head
    }

    /// Nodes of all `Break` statements.
    pub fn breaks(&self) -> &[NodeId] {
        &self.breaks
    }

    /// Whether `node` is a `Break` statement.
    pub fn is_break(&self, node: NodeId) -> bool {
        self.breaks.contains(&node)
    }

    /// A copy of the graph with every edge *out of* `Break` nodes removed.
    ///
    /// Paths in the pruned graph are exactly the break-free paths of the
    /// original: a definition that reaches `Exit` here does so on an
    /// execution where no break fired — the only executions whose carried
    /// snapshot downstream machines ever observe.
    pub fn prune_breaks(&self) -> Cfg<'a> {
        let mut pruned = self.clone();
        for &b in &self.breaks {
            pruned.succs[b].clear();
        }
        pruned.preds = vec![Vec::new(); pruned.succs.len()];
        for from in 0..pruned.succs.len() {
            for i in 0..pruned.succs[from].len() {
                let to = pruned.succs[from][i];
                pruned.preds[to].push(from);
            }
        }
        pruned
    }

    /// Forward reachability from `Entry`, pruning constant branches.
    ///
    /// `const_cond(node)` reports whether the `If` at `node` has a condition
    /// proven constant (by [`crate::dataflow::ConstProp`]); `Some(true)`
    /// takes only the `then` edge, `Some(false)` only the `else` edge,
    /// `None` both. Returns a per-node reachability mask.
    pub fn reachable(&self, const_cond: impl Fn(NodeId) -> Option<bool>) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![ENTRY];
        seen[ENTRY] = true;
        while let Some(n) = stack.pop() {
            let targets: Vec<NodeId> = match (self.branch_targets[n], const_cond(n)) {
                (Some((t, _)), Some(true)) => vec![t],
                (Some((_, e)), Some(false)) => vec![e],
                _ => self.succs[n].to_vec(),
            };
            for t in targets {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Stmt};
    use crate::types::Ty;

    fn sample() -> UdfFn {
        // 0: let x = 0
        // 1: for nbrs {
        // 2:   if (p[u]) {
        // 3:     x = x + 1
        // 4:     break
        //      }
        //    }
        // 5: emit(x)
        UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::let_("x", Ty::Int, Expr::i(0)),
                Stmt::for_neighbors(vec![Stmt::if_(
                    Expr::prop_u("p"),
                    vec![
                        Stmt::assign("x", Expr::local("x").add(Expr::i(1))),
                        Stmt::Break,
                    ],
                )]),
                Stmt::Emit(Expr::local("x")),
            ],
        )
    }

    #[test]
    fn preorder_numbering_matches_structure() {
        let udf = sample();
        let cfg = Cfg::build(&udf);
        assert_eq!(cfg.num_stmts(), 6);
        assert!(matches!(cfg.stmt(0), Stmt::Let { .. }));
        assert!(matches!(cfg.stmt(1), Stmt::ForNeighbors { .. }));
        assert!(matches!(cfg.stmt(2), Stmt::If { .. }));
        assert!(matches!(cfg.stmt(3), Stmt::Assign { .. }));
        assert!(matches!(cfg.stmt(4), Stmt::Break));
        assert!(matches!(cfg.stmt(5), Stmt::Emit(_)));
    }

    #[test]
    fn loop_edges_and_break_target() {
        let udf = sample();
        let cfg = Cfg::build(&udf);
        let head = cfg.loop_head().unwrap();
        assert_eq!(head, cfg.node_of(1));
        // Head branches into the body and past the loop.
        assert!(cfg.succs(head).contains(&cfg.node_of(2)));
        assert!(cfg.succs(head).contains(&cfg.node_of(5)));
        // If's else-arm is the back edge to the head.
        assert!(cfg.succs(cfg.node_of(2)).contains(&head));
        // Break jumps to the suffix, not to Exit.
        assert_eq!(cfg.succs(cfg.node_of(4)), &[cfg.node_of(5)]);
        assert!(cfg.is_break(cfg.node_of(4)));
    }

    #[test]
    fn prune_breaks_cuts_break_paths() {
        let udf = sample();
        let cfg = Cfg::build(&udf);
        let pruned = cfg.prune_breaks();
        assert!(pruned.succs(cfg.node_of(4)).is_empty());
        // The suffix is still reachable through the loop-exhausted edge.
        let seen = pruned.reachable(|_| None);
        assert!(seen[cfg.node_of(5)]);
        assert!(seen[EXIT]);
    }

    #[test]
    fn constant_branch_pruning_hides_arm() {
        // if (false) { break } — the break is unreachable when the
        // condition is known.
        let udf = UdfFn::new(
            "t",
            Ty::Int,
            vec![
                Stmt::for_neighbors(vec![Stmt::if_(Expr::b(false), vec![Stmt::Break])]),
                Stmt::Emit(Expr::i(1)),
            ],
        );
        let cfg = Cfg::build(&udf);
        let if_node = cfg.node_of(1);
        let seen = cfg.reachable(|n| if n == if_node { Some(false) } else { None });
        assert!(!seen[cfg.node_of(2)], "break behind if(false) is pruned");
        let all = cfg.reachable(|_| None);
        assert!(all[cfg.node_of(2)]);
    }
}
