//! Public entry point for the UDF bytecode compiler.
//!
//! Call [`compile`] on an instrumented UDF (see [`crate::instrument`])
//! **after** [`crate::check`] passes — the lowering relies on the
//! checker's structural guarantees (unique locals, defined-before-use,
//! no nested loops). The result plugs into [`crate::UdfProgram`]
//! automatically: its constructor compiles and the engine knob
//! `EngineConfig::udf_exec` picks the executor. The only programs
//! `compile` rejects are resource-limit outliers (see
//! [`CompileError`]); those fall back to the tree interpreter with
//! identical semantics, and lint reports the fallback as `W006`.

use crate::bytecode;
use crate::transform::InstrumentedUdf;

pub use crate::bytecode::{CompileError, CompiledUdf};

/// Lowers an instrumented, checked UDF to register bytecode.
///
/// # Errors
///
/// [`CompileError::TooManyRegisters`] when named locals plus expression
/// temporaries exceed the `u8` register file;
/// [`CompileError::TooManyCarried`] when more than 64 locals are carried
/// across machine boundaries.
///
/// # Example
///
/// ```
/// use symple_udf::{compile, instrument, paper_udfs};
/// let inst = instrument(&paper_udfs::bfs_udf()).unwrap();
/// let code = compile(&inst).unwrap();
/// assert!(code.len() > 0);
/// assert_eq!(code.prop_names(), ["frontier".to_string()]);
/// ```
pub fn compile(inst: &InstrumentedUdf) -> Result<CompiledUdf, CompileError> {
    bytecode::lower(inst)
}
