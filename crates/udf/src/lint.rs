//! `symple-lint`: a clippy-style multi-diagnostic pass over UDFs.
//!
//! Combines the collecting checker ([`crate::check_all`], codes `E001`–
//! `E007`) with warning lints driven by the CFG and dataflow analyses:
//!
//! | code | finding |
//! |------|---------|
//! | `W001` | unused local / initial value never read |
//! | `W002` | `if` condition is constant (always-true/false break guards) |
//! | `W003` | unreachable statement (e.g. a write after `break`) |
//! | `W004` | carried local dropped by carried-state minimization |
//! | `W005` | neighbour-order-sensitive float accumulation into carried state |
//! | `W006` | bytecode compilation falls back to the tree interpreter |
//! | `W007` | unbounded carried integer range forces wide dependency encoding |
//! | `W008` | non-monotone break defeats certified early-exit |
//!
//! `E000` is reserved for parse errors from [`lint_source`].
//!
//! Warnings never gate; errors make the CLI (`examples/symple_lint.rs`) and
//! the CI hook exit non-zero.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::{analyze, analyze_naive, DepInfo};
use crate::ast::{Expr, Stmt, UdfFn};
use crate::cfg::Cfg;
use crate::check::check_all;
use crate::dataflow::{const_eval, solve, stmt_uses, Const, ConstProp, Liveness};
use crate::diag::{attach_spans, Diagnostic, Span, StmtId};
use crate::parser::parse_udf_with_spans;
use crate::types::{Ty, Value};

/// Lints `udf` against `schema`: all checker errors plus the warning
/// passes. Diagnostics are anchored to pre-order statement ids (attach a
/// [`crate::SpanMap`] for source locations); errors come first in traversal
/// order, then warnings ordered by statement.
pub fn lint(udf: &UdfFn, schema: &BTreeMap<String, Ty>) -> Vec<Diagnostic> {
    let mut diags = check_all(udf, schema);
    diags.extend(warning_passes(udf));
    diags
}

/// Parses `src` and lints it, attaching byte-offset spans to every finding.
/// A parse failure yields a single `E000` diagnostic pointing at the
/// offending byte.
pub fn lint_source(src: &str, schema: &BTreeMap<String, Ty>) -> Vec<Diagnostic> {
    match parse_udf_with_spans(src) {
        Err(e) => {
            let start = e.offset.min(src.len());
            let mut d = Diagnostic::error("E000", format!("parse error: {}", e.message));
            d.span = Some(Span::new(start, (start + 1).min(src.len()).max(start)));
            vec![d]
        }
        Ok((udf, spans)) => {
            let mut diags = lint(&udf, schema);
            attach_spans(&mut diags, &spans);
            diags
        }
    }
}

fn warning_passes(udf: &UdfFn) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cfg = Cfg::build(udf);
    // The analyses are optional: they fail on nested loops or instrumented
    // input, which check_all/E-codes already surface. The CFG lints still
    // run in that case.
    let naive = analyze_naive(udf).ok();
    let minimized = analyze(udf).ok();
    let carried_names: BTreeSet<String> = naive
        .iter()
        .flat_map(|i| i.carried.iter().map(|(n, _)| n.clone()))
        .collect();

    let consts = solve(
        &cfg,
        &ConstProp {
            untrusted_lets: carried_names.clone(),
        },
    );
    let const_branch = |node: usize| match cfg.stmt_of(node).map(|id| cfg.stmt(id)) {
        Some(Stmt::If { cond, .. }) => match const_eval(cond, &consts.before[node]) {
            Some(Const::Val(Value::Bool(b))) => Some(b),
            _ => None,
        },
        _ => None,
    };
    let reachable = cfg.reachable(const_branch);

    // W002: constant `if` conditions, with a note when a break is involved.
    for id in 0..cfg.num_stmts() {
        let node = cfg.node_of(id);
        if !reachable[node] {
            continue;
        }
        if let Stmt::If {
            cond,
            then_branch,
            else_branch,
        } = cfg.stmt(id)
        {
            if let Some(Const::Val(Value::Bool(b))) = const_eval(cond, &consts.before[node]) {
                let (taken, dead) = if b {
                    (then_branch, else_branch)
                } else {
                    (else_branch, then_branch)
                };
                let mut msg = format!("`if` condition is always {b}");
                if contains_break(dead) {
                    msg.push_str("; the `break` it guards can never fire");
                } else if contains_break(taken) {
                    msg.push_str("; the `break` it guards always fires");
                }
                out.push(Diagnostic::warning("W002", msg).with_stmt(id));
            }
        }
    }

    // W003: unreachable statements — report the first of each dead run.
    for id in 0..cfg.num_stmts() {
        let node = cfg.node_of(id);
        if !reachable[node] && (id == 0 || reachable[cfg.node_of(id - 1)]) {
            out.push(
                Diagnostic::warning("W003", "statement is never executed".to_string())
                    .with_stmt(id),
            );
        }
    }

    // W001: locals whose value after declaration is dead.
    let live = solve(
        &cfg,
        &Liveness {
            exit_live: carried_names,
        },
    );
    for id in 0..cfg.num_stmts() {
        let node = cfg.node_of(id);
        if !reachable[node] {
            continue; // W003 already covers it
        }
        if let Stmt::Let { name, .. } = cfg.stmt(id) {
            if !live.after[node].contains(name) {
                let read_anywhere =
                    (0..cfg.num_stmts()).any(|s| stmt_uses(cfg.stmt(s)).contains(name));
                let msg = if read_anywhere {
                    format!(
                        "the initial value of `{name}` is never read (overwritten before any use)"
                    )
                } else {
                    format!("local `{name}` is never read")
                };
                out.push(Diagnostic::warning("W001", msg).with_stmt(id));
            }
        }
    }

    // W004: carried state the dataflow analysis proved dead on the wire.
    if let (Some(naive), Some(min)) = (&naive, &minimized) {
        for (name, _) in dropped_carried(naive, min) {
            let let_id = (0..cfg.num_stmts())
                .find(|&id| matches!(cfg.stmt(id), Stmt::Let { name: n, .. } if *n == name));
            let mut d = Diagnostic::warning(
                "W004",
                format!(
                    "local `{name}` is syntactically carried but its value never \
                     crosses a machine boundary; it is dropped from the dependency message"
                ),
            );
            if let Some(id) = let_id {
                d = d.with_stmt(id);
            }
            out.push(d);
        }
    }

    // W005: order-sensitive float accumulation into carried state.
    if let Some(min) = &minimized {
        let float_carried: BTreeSet<&str> = min
            .carried
            .iter()
            .filter(|(_, ty)| *ty == Ty::Float)
            .map(|(n, _)| n.as_str())
            .collect();
        if !float_carried.is_empty() {
            for (id, stmt, in_loop) in preorder(udf) {
                if !in_loop {
                    continue;
                }
                if let Stmt::Assign { name, value } = stmt {
                    if float_carried.contains(name.as_str())
                        && stmt_uses(stmt).contains(name)
                        && reads_neighbor_prop(value)
                    {
                        out.push(
                            Diagnostic::warning(
                                "W005",
                                format!(
                                    "floating-point accumulation into carried local `{name}` \
                                     depends on neighbour visit order; results may differ \
                                     across partitionings unless differentiated propagation \
                                     is disabled"
                                ),
                            )
                            .with_stmt(id),
                        );
                    }
                }
            }
        }
    }

    // W006: the program will not compile to bytecode, so the engine falls
    // back to tree-walking interpretation (correct but slower dispatch).
    if let Ok(inst) = crate::transform::instrument(udf) {
        if let Err(e) = crate::compile(&inst) {
            out.push(Diagnostic::warning(
                "W006",
                format!("bytecode compilation falls back to the interpreter: {e}"),
            ));
        }
    }

    // W007: an integer carried local whose value range the abstract
    // interpreter could not bound ships at the full 8 bytes even under
    // `dep_width = Certified`.
    if let Some(min) = &minimized {
        for cc in &min.cert.carried {
            if cc.ty == Ty::Int && cc.width == 8 {
                let let_id = (0..cfg.num_stmts())
                    .find(|&id| matches!(cfg.stmt(id), Stmt::Let { name: n, .. } if *n == cc.name));
                let mut d = Diagnostic::warning(
                    "W007",
                    format!(
                        "carried local `{}` has an unbounded value range ({}); it ships \
                         at the full 8 bytes even under certified dependency narrowing",
                        cc.name, cc.range
                    ),
                );
                if let Some(id) = let_id {
                    d = d.with_stmt(id);
                }
                out.push(d);
            }
        }
    }

    // W008: the break condition is not provably monotone, so the latch
    // certificate fails and `early_exit = Certified` falls back to
    // auditing every skipped segment instead of trusting the skip bit.
    if let Some(min) = &minimized {
        if min.has_dependency() && !min.cert.latches() {
            out.push(Diagnostic::warning(
                "W008",
                "the break condition is not provably monotone (it could un-trigger on \
                 re-evaluation); certified early-exit falls back to auditing skipped \
                 segments"
                    .to_string(),
            ));
        }
    }

    out.sort_by_key(|d| (d.stmt, d.code));
    out
}

/// Carried entries present in `naive` but dropped by the minimized analysis.
fn dropped_carried(naive: &DepInfo, min: &DepInfo) -> Vec<(String, Ty)> {
    naive
        .carried
        .iter()
        .filter(|c| !min.carried.contains(c))
        .cloned()
        .collect()
}

fn contains_break(block: &[Stmt]) -> bool {
    block.iter().any(|s| match s {
        Stmt::Break => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => contains_break(then_branch) || contains_break(else_branch),
        Stmt::ForNeighbors { body } => contains_break(body),
        _ => false,
    })
}

fn reads_neighbor_prop(e: &Expr) -> bool {
    match e {
        Expr::Prop { index, .. } => {
            matches!(**index, Expr::CurrentNeighbor) || reads_neighbor_prop(index)
        }
        Expr::Unary(_, a) => reads_neighbor_prop(a),
        Expr::Binary(_, a, b) => reads_neighbor_prop(a) || reads_neighbor_prop(b),
        Expr::Lit(_) | Expr::Local(_) | Expr::CurrentVertex | Expr::CurrentNeighbor => false,
    }
}

/// Pre-order walk yielding `(id, stmt, inside-the-neighbour-loop)`.
fn preorder(udf: &UdfFn) -> Vec<(StmtId, &Stmt, bool)> {
    fn walk<'a>(
        block: &'a [Stmt],
        in_loop: bool,
        next: &mut StmtId,
        out: &mut Vec<(StmtId, &'a Stmt, bool)>,
    ) {
        for s in block {
            let id = *next;
            *next += 1;
            out.push((id, s, in_loop));
            match s {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, in_loop, next, out);
                    walk(else_branch, in_loop, next, out);
                }
                Stmt::ForNeighbors { body } => walk(body, true, next, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    let mut next = 0;
    walk(&udf.body, false, &mut next, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_udfs;

    fn schema(entries: &[(&str, Ty)]) -> BTreeMap<String, Ty> {
        entries.iter().map(|(n, t)| (n.to_string(), *t)).collect()
    }

    #[test]
    fn clean_udf_produces_no_errors() {
        let diags = lint(&paper_udfs::bfs_udf(), &schema(&[("frontier", Ty::Bool)]));
        assert!(
            diags
                .iter()
                .all(|d| d.severity != crate::diag::Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn kcore_reports_dead_carried_state() {
        let diags = lint(&paper_udfs::kcore_udf(4), &schema(&[("active", Ty::Bool)]));
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W004" && d.message.contains("`done`")),
            "{diags:?}"
        );
    }

    #[test]
    fn sampling_reports_order_sensitive_accumulation() {
        let diags = lint(
            &paper_udfs::sampling_udf(),
            &schema(&[("weight", Ty::Float), ("r", Ty::Float)]),
        );
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W005" && d.message.contains("`acc`")),
            "{diags:?}"
        );
    }

    #[test]
    fn constant_break_guard_and_dead_write_detected() {
        use crate::ast::{Expr, Stmt, UdfFn};
        // 0: let dbg = false
        // 1: let x = 0
        // 2: for {
        // 3:   x = x + 1
        // 4:   if (dbg) { 5: break }      <- always false, guards a break
        // 6:   if (x >= 2) {
        // 7:     break
        // 8:     x = 0                    <- write after break
        //      }
        //    }
        // 9: emit(x)
        let udf = UdfFn::new(
            "bad",
            Ty::Int,
            vec![
                Stmt::let_("dbg", Ty::Bool, Expr::b(false)),
                Stmt::let_("x", Ty::Int, Expr::i(0)),
                Stmt::for_neighbors(vec![
                    Stmt::assign("x", Expr::local("x").add(Expr::i(1))),
                    Stmt::if_(Expr::local("dbg"), vec![Stmt::Break]),
                    Stmt::if_(
                        Expr::local("x").ge(Expr::i(2)),
                        vec![Stmt::Break, Stmt::assign("x", Expr::i(0))],
                    ),
                ]),
                Stmt::Emit(Expr::local("x")),
            ],
        );
        let diags = lint(&udf, &schema(&[]));
        let w002 = diags.iter().find(|d| d.code == "W002").expect("W002");
        assert_eq!(w002.stmt, Some(4));
        assert!(w002.message.contains("always false"));
        assert!(w002.message.contains("never fire"));
        // two dead runs: the pruned break (5) and the write after break (8)
        let w003: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "W003")
            .map(|d| d.stmt)
            .collect();
        assert_eq!(w003, vec![Some(5), Some(8)]);
    }

    #[test]
    fn unused_local_detected() {
        use crate::ast::{Expr, Stmt, UdfFn};
        let udf = UdfFn::new(
            "bad",
            Ty::Int,
            vec![
                Stmt::let_("unused", Ty::Int, Expr::i(7)),
                Stmt::Emit(Expr::i(0)),
            ],
        );
        let diags = lint(&udf, &schema(&[]));
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W001" && d.message.contains("`unused`")),
            "{diags:?}"
        );
    }

    #[test]
    fn register_pressure_triggers_w006() {
        use crate::ast::{Expr, Stmt, UdfFn};
        // 300 locals exceed the u8 register file, so the engine would fall
        // back to the interpreter; lint must surface that.
        let mut body: Vec<Stmt> = (0..300)
            .map(|i| Stmt::let_(&format!("x{i}"), Ty::Int, Expr::i(i)))
            .collect();
        body.push(Stmt::Emit(Expr::local("x299")));
        let udf = UdfFn::new("wide", Ty::Int, body);
        let diags = lint(&udf, &schema(&[]));
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W006" && d.message.contains("falls back")),
            "{diags:?}"
        );
    }

    #[test]
    fn paper_kernels_compile_without_w006() {
        for udf in [
            paper_udfs::bfs_udf(),
            paper_udfs::mis_udf(),
            paper_udfs::kcore_udf(4),
            paper_udfs::kmeans_udf(),
            paper_udfs::sampling_udf(),
        ] {
            let diags = warning_passes(&udf);
            assert!(diags.iter().all(|d| d.code != "W006"), "{diags:?}");
        }
    }

    #[test]
    fn cc_unbounded_carried_range_reports_w007() {
        // Connected components carries `best: Int` whose range the
        // interval domain cannot bound (it tracks neighbour labels).
        let diags = lint(&paper_udfs::cc_udf(), &schema(&[("label", Ty::Int)]));
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W007" && d.message.contains("`best`")),
            "{diags:?}"
        );
        // K-core's counter is bounded by k, so it must NOT fire.
        let diags = lint(&paper_udfs::kcore_udf(4), &schema(&[("active", Ty::Bool)]));
        assert!(diags.iter().all(|d| d.code != "W007"), "{diags:?}");
    }

    #[test]
    fn sampling_non_monotone_break_reports_w008() {
        let diags = lint(
            &paper_udfs::sampling_udf(),
            &schema(&[("weight", Ty::Float), ("r", Ty::Float)]),
        );
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W008" && d.message.contains("monotone")),
            "{diags:?}"
        );
        // K-core's break (`cnt >= k` over a non-decreasing counter) is
        // provably stable: no W008.
        let diags = lint(&paper_udfs::kcore_udf(4), &schema(&[("active", Ty::Bool)]));
        assert!(diags.iter().all(|d| d.code != "W008"), "{diags:?}");
    }

    #[test]
    fn lint_source_attaches_spans() {
        let src =
            "def t(Vertex v, Array[Vertex] nbrs) -> int {\n  int unused = 7;\n  emit(v, 0);\n}";
        let diags = lint_source(src, &schema(&[]));
        let w001 = diags.iter().find(|d| d.code == "W001").expect("W001");
        let span = w001.span.expect("span attached");
        assert!(src[span.start..].starts_with("int unused = 7;"));
    }

    #[test]
    fn parse_error_is_a_diagnostic() {
        let diags = lint_source("def t(Vertex v", &schema(&[]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E000");
        assert_eq!(diags[0].severity, crate::diag::Severity::Error);
        assert!(diags[0].span.is_some());
    }
}
