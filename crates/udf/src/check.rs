//! Static checker for UDFs: name resolution and type checking against a
//! property schema.

use crate::ast::{BinOp, Expr, Stmt, UdfFn, UnOp};
use crate::types::Ty;
use crate::UdfError;
use std::collections::BTreeMap;

struct Checker<'a> {
    schema: &'a BTreeMap<String, Ty>,
    locals: BTreeMap<String, Ty>,
    update_ty: Ty,
}

/// Checks `udf` against the property `schema` (array name → element type).
///
/// # Errors
///
/// Returns the first [`UdfError`] found: unknown names, type mismatches,
/// `break`/`u` outside the loop, duplicate locals.
///
/// # Example
///
/// ```
/// use symple_udf::{check, paper_udfs};
/// use symple_udf::types::Ty;
/// let schema = [("frontier".to_string(), Ty::Bool)].into();
/// check(&paper_udfs::bfs_udf(), &schema).unwrap();
/// ```
pub fn check(udf: &UdfFn, schema: &BTreeMap<String, Ty>) -> Result<(), UdfError> {
    let mut c = Checker {
        schema,
        locals: BTreeMap::new(),
        update_ty: udf.update_ty,
    };
    c.check_block(&udf.body, false)
}

impl Checker<'_> {
    fn check_block(&mut self, block: &[Stmt], in_loop: bool) -> Result<(), UdfError> {
        for s in block {
            self.check_stmt(s, in_loop)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt, in_loop: bool) -> Result<(), UdfError> {
        match s {
            Stmt::Let { name, ty, init } => {
                let found = self.type_of(init, in_loop)?;
                self.expect(*ty, found, &format!("initialiser of `{name}`"))?;
                if self.locals.insert(name.clone(), *ty).is_some() && !in_loop {
                    return Err(UdfError::DuplicateLocal(name.clone()));
                }
                Ok(())
            }
            Stmt::Assign { name, value } => {
                let Some(&declared) = self.locals.get(name) else {
                    return Err(UdfError::UndefinedLocal(name.clone()));
                };
                let found = self.type_of(value, in_loop)?;
                self.expect(declared, found, &format!("assignment to `{name}`"))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let t = self.type_of(cond, in_loop)?;
                self.expect(Ty::Bool, t, "if condition")?;
                self.check_block(then_branch, in_loop)?;
                self.check_block(else_branch, in_loop)
            }
            Stmt::ForNeighbors { body } => {
                if in_loop {
                    return Err(UdfError::NestedLoop);
                }
                self.check_block(body, true)
            }
            Stmt::Break => {
                if in_loop {
                    Ok(())
                } else {
                    Err(UdfError::OutsideLoop("break".into()))
                }
            }
            Stmt::Emit(e) => {
                let t = self.type_of(e, in_loop)?;
                self.expect(self.update_ty, t, "emit")
            }
            Stmt::Return | Stmt::ReceiveDepGuard => Ok(()),
            Stmt::EmitDep => {
                if in_loop {
                    Ok(())
                } else {
                    Err(UdfError::OutsideLoop("emit_dep".into()))
                }
            }
        }
    }

    fn expect(&self, expected: Ty, found: Ty, context: &str) -> Result<(), UdfError> {
        if expected == found || (expected == Ty::Float && found == Ty::Int) {
            Ok(())
        } else {
            Err(UdfError::TypeMismatch {
                context: context.to_string(),
                expected,
                found,
            })
        }
    }

    fn type_of(&self, e: &Expr, in_loop: bool) -> Result<Ty, UdfError> {
        match e {
            Expr::Lit(v) => Ok(v.ty()),
            Expr::Local(name) => self
                .locals
                .get(name)
                .copied()
                .ok_or_else(|| UdfError::UndefinedLocal(name.clone())),
            Expr::Prop { array, index } => {
                let idx_ty = self.type_of(index, in_loop)?;
                self.expect(Ty::Vertex, idx_ty, &format!("index of `{array}`"))?;
                self.schema
                    .get(array)
                    .copied()
                    .ok_or_else(|| UdfError::UnknownProperty(array.clone()))
            }
            Expr::CurrentVertex => Ok(Ty::Vertex),
            Expr::CurrentNeighbor => {
                if in_loop {
                    Ok(Ty::Vertex)
                } else {
                    Err(UdfError::OutsideLoop("u".into()))
                }
            }
            Expr::Unary(op, a) => {
                let t = self.type_of(a, in_loop)?;
                match op {
                    UnOp::Not => {
                        self.expect(Ty::Bool, t, "operand of `!`")?;
                        Ok(Ty::Bool)
                    }
                    UnOp::Neg => match t {
                        Ty::Int | Ty::Float => Ok(t),
                        other => Err(UdfError::TypeMismatch {
                            context: "operand of unary `-`".into(),
                            expected: Ty::Float,
                            found: other,
                        }),
                    },
                }
            }
            Expr::Binary(op, a, b) => {
                let ta = self.type_of(a, in_loop)?;
                let tb = self.type_of(b, in_loop)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        self.expect(Ty::Bool, ta, "logical operand")?;
                        self.expect(Ty::Bool, tb, "logical operand")?;
                        Ok(Ty::Bool)
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul => match (ta, tb) {
                        (Ty::Int, Ty::Int) => Ok(Ty::Int),
                        (Ty::Float | Ty::Int, Ty::Float | Ty::Int) => Ok(Ty::Float),
                        _ => Err(UdfError::TypeMismatch {
                            context: "arithmetic operand".into(),
                            expected: Ty::Float,
                            found: if matches!(ta, Ty::Int | Ty::Float) {
                                tb
                            } else {
                                ta
                            },
                        }),
                    },
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        let comparable = matches!(
                            (ta, tb),
                            (Ty::Int | Ty::Float, Ty::Int | Ty::Float)
                                | (Ty::Vertex, Ty::Vertex)
                                | (Ty::Bool, Ty::Bool)
                        );
                        if comparable {
                            Ok(Ty::Bool)
                        } else {
                            Err(UdfError::TypeMismatch {
                                context: "comparison operand".into(),
                                expected: ta,
                                found: tb,
                            })
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_udfs;

    fn schema(entries: &[(&str, Ty)]) -> BTreeMap<String, Ty> {
        entries.iter().map(|(n, t)| (n.to_string(), *t)).collect()
    }

    #[test]
    fn paper_udfs_typecheck() {
        check(&paper_udfs::bfs_udf(), &schema(&[("frontier", Ty::Bool)])).unwrap();
        check(
            &paper_udfs::mis_udf(),
            &schema(&[("active", Ty::Bool), ("color", Ty::Int)]),
        )
        .unwrap();
        check(&paper_udfs::kcore_udf(3), &schema(&[("active", Ty::Bool)])).unwrap();
        check(
            &paper_udfs::kmeans_udf(),
            &schema(&[("assigned", Ty::Bool), ("cluster", Ty::Int)]),
        )
        .unwrap();
        check(
            &paper_udfs::sampling_udf(),
            &schema(&[("weight", Ty::Float), ("r", Ty::Float)]),
        )
        .unwrap();
    }

    #[test]
    fn unknown_property_rejected() {
        let err = check(&paper_udfs::bfs_udf(), &schema(&[])).unwrap_err();
        assert_eq!(err, UdfError::UnknownProperty("frontier".into()));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let udf = UdfFn::new("bad", Ty::Bool, vec![Stmt::Break]);
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::OutsideLoop("break".into()))
        );
    }

    #[test]
    fn neighbor_outside_loop_rejected() {
        let udf = UdfFn::new("bad", Ty::Vertex, vec![Stmt::Emit(Expr::CurrentNeighbor)]);
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::OutsideLoop("u".into()))
        );
    }

    #[test]
    fn type_mismatch_in_condition() {
        let udf = UdfFn::new(
            "bad",
            Ty::Bool,
            vec![Stmt::for_neighbors(vec![Stmt::if_(
                Expr::i(1),
                vec![Stmt::Break],
            )])],
        );
        assert!(matches!(
            check(&udf, &schema(&[])),
            Err(UdfError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn undefined_local_rejected() {
        let udf = UdfFn::new("bad", Ty::Int, vec![Stmt::assign("x", Expr::i(1))]);
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::UndefinedLocal("x".into()))
        );
    }

    #[test]
    fn duplicate_local_rejected() {
        let udf = UdfFn::new(
            "bad",
            Ty::Int,
            vec![
                Stmt::let_("x", Ty::Int, Expr::i(1)),
                Stmt::let_("x", Ty::Int, Expr::i(2)),
            ],
        );
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::DuplicateLocal("x".into()))
        );
    }

    #[test]
    fn int_widens_to_float() {
        let udf = UdfFn::new(
            "ok",
            Ty::Float,
            vec![
                Stmt::let_("x", Ty::Float, Expr::i(1)),
                Stmt::Emit(Expr::local("x").add(Expr::i(2))),
            ],
        );
        check(&udf, &schema(&[])).unwrap();
    }
}
