//! Static checker for UDFs: name resolution and type checking against a
//! property schema.
//!
//! The checker *collects* every error it can recover from rather than
//! stopping at the first one: [`check_all`] returns the full list as
//! [`Diagnostic`]s anchored to pre-order statement ids (so spans from
//! [`crate::parser::parse_udf_with_spans`] attach directly), while
//! [`check`] keeps the original fail-fast contract and reports only the
//! first error, in the same traversal order as before.

use crate::ast::{BinOp, Expr, Stmt, UdfFn, UnOp};
use crate::diag::{Diagnostic, StmtId};
use crate::types::Ty;
use crate::UdfError;
use std::collections::BTreeMap;

/// Stable diagnostic code for a checker error.
pub fn error_code(err: &UdfError) -> &'static str {
    match err {
        UdfError::UndefinedLocal(_) => "E001",
        UdfError::UnknownProperty(_) => "E002",
        UdfError::TypeMismatch { .. } => "E003",
        UdfError::OutsideLoop(_) => "E004",
        UdfError::DuplicateLocal(_) => "E005",
        UdfError::NestedLoop => "E006",
        UdfError::AlreadyInstrumented => "E007",
    }
}

struct Checker<'a> {
    schema: &'a BTreeMap<String, Ty>,
    locals: BTreeMap<String, Ty>,
    update_ty: Ty,
    errors: Vec<(StmtId, UdfError)>,
    next_id: StmtId,
}

/// Checks `udf` against the property `schema` (array name → element type).
///
/// # Errors
///
/// Returns the first [`UdfError`] found: unknown names, type mismatches,
/// `break`/`u` outside the loop, duplicate locals.
///
/// # Example
///
/// ```
/// use symple_udf::{check, paper_udfs};
/// use symple_udf::types::Ty;
/// let schema = [("frontier".to_string(), Ty::Bool)].into();
/// check(&paper_udfs::bfs_udf(), &schema).unwrap();
/// ```
pub fn check(udf: &UdfFn, schema: &BTreeMap<String, Ty>) -> Result<(), UdfError> {
    match collect_errors(udf, schema).into_iter().next() {
        Some((_, err)) => Err(err),
        None => Ok(()),
    }
}

/// Checks `udf` and returns *every* error as a [`Diagnostic`], each anchored
/// to the offending statement's pre-order id. Attach a
/// [`crate::SpanMap`] (see [`crate::diag::attach_spans`]) to get source
/// locations.
pub fn check_all(udf: &UdfFn, schema: &BTreeMap<String, Ty>) -> Vec<Diagnostic> {
    collect_errors(udf, schema)
        .into_iter()
        .map(|(id, err)| Diagnostic::error(error_code(&err), err.to_string()).with_stmt(id))
        .collect()
}

/// Runs the collecting checker; errors come back in traversal (pre-)order,
/// so the first element is exactly what the fail-fast checker used to
/// return.
fn collect_errors(udf: &UdfFn, schema: &BTreeMap<String, Ty>) -> Vec<(StmtId, UdfError)> {
    let mut c = Checker {
        schema,
        locals: BTreeMap::new(),
        update_ty: udf.update_ty,
        errors: Vec::new(),
        next_id: 0,
    };
    c.check_block(&udf.body, false);
    c.errors
}

impl Checker<'_> {
    fn err(&mut self, id: StmtId, e: UdfError) {
        self.errors.push((id, e));
    }

    fn check_block(&mut self, block: &[Stmt], in_loop: bool) {
        for s in block {
            self.check_stmt(s, in_loop);
        }
    }

    fn check_stmt(&mut self, s: &Stmt, in_loop: bool) {
        let id = self.next_id;
        self.next_id += 1;
        match s {
            Stmt::Let { name, ty, init } => {
                match self.type_of(init, in_loop) {
                    Ok(found) => {
                        if let Err(e) = self.expect(*ty, found, &format!("initialiser of `{name}`"))
                        {
                            self.err(id, e);
                        }
                    }
                    Err(e) => self.err(id, e),
                }
                // Re-declaring a local is an error everywhere. Inside the
                // loop it used to be silently allowed, shadowing the carried
                // state the analyzer extracts — the restore at the top of a
                // segment and the shadowing `let` would disagree about the
                // local's value.
                if self.locals.insert(name.clone(), *ty).is_some() {
                    self.err(id, UdfError::DuplicateLocal(name.clone()));
                }
            }
            Stmt::Assign { name, value } => {
                let declared = match self.locals.get(name) {
                    Some(&d) => Some(d),
                    None => {
                        self.err(id, UdfError::UndefinedLocal(name.clone()));
                        None
                    }
                };
                match self.type_of(value, in_loop) {
                    Ok(found) => {
                        if let Some(declared) = declared {
                            if let Err(e) =
                                self.expect(declared, found, &format!("assignment to `{name}`"))
                            {
                                self.err(id, e);
                            }
                        }
                    }
                    Err(e) => self.err(id, e),
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                match self.type_of(cond, in_loop) {
                    Ok(t) => {
                        if let Err(e) = self.expect(Ty::Bool, t, "if condition") {
                            self.err(id, e);
                        }
                    }
                    Err(e) => self.err(id, e),
                }
                self.check_block(then_branch, in_loop);
                self.check_block(else_branch, in_loop);
            }
            Stmt::ForNeighbors { body } => {
                if in_loop {
                    self.err(id, UdfError::NestedLoop);
                }
                self.check_block(body, true);
            }
            Stmt::Break => {
                if !in_loop {
                    self.err(id, UdfError::OutsideLoop("break".into()));
                }
            }
            Stmt::Emit(e) => match self.type_of(e, in_loop) {
                Ok(t) => {
                    if let Err(err) = self.expect(self.update_ty, t, "emit") {
                        self.err(id, err);
                    }
                }
                Err(err) => self.err(id, err),
            },
            Stmt::Return | Stmt::ReceiveDepGuard => {}
            Stmt::EmitDep => {
                if !in_loop {
                    self.err(id, UdfError::OutsideLoop("emit_dep".into()));
                }
            }
        }
    }

    fn expect(&self, expected: Ty, found: Ty, context: &str) -> Result<(), UdfError> {
        if expected == found || (expected == Ty::Float && found == Ty::Int) {
            Ok(())
        } else {
            Err(UdfError::TypeMismatch {
                context: context.to_string(),
                expected,
                found,
            })
        }
    }

    fn type_of(&self, e: &Expr, in_loop: bool) -> Result<Ty, UdfError> {
        match e {
            Expr::Lit(v) => Ok(v.ty()),
            Expr::Local(name) => self
                .locals
                .get(name)
                .copied()
                .ok_or_else(|| UdfError::UndefinedLocal(name.clone())),
            Expr::Prop { array, index } => {
                let idx_ty = self.type_of(index, in_loop)?;
                self.expect(Ty::Vertex, idx_ty, &format!("index of `{array}`"))?;
                self.schema
                    .get(array)
                    .copied()
                    .ok_or_else(|| UdfError::UnknownProperty(array.clone()))
            }
            Expr::CurrentVertex => Ok(Ty::Vertex),
            Expr::CurrentNeighbor => {
                if in_loop {
                    Ok(Ty::Vertex)
                } else {
                    Err(UdfError::OutsideLoop("u".into()))
                }
            }
            Expr::Unary(op, a) => {
                let t = self.type_of(a, in_loop)?;
                match op {
                    UnOp::Not => {
                        self.expect(Ty::Bool, t, "operand of `!`")?;
                        Ok(Ty::Bool)
                    }
                    UnOp::Neg => match t {
                        Ty::Int | Ty::Float => Ok(t),
                        other => Err(UdfError::TypeMismatch {
                            context: "operand of unary `-`".into(),
                            expected: Ty::Float,
                            found: other,
                        }),
                    },
                }
            }
            Expr::Binary(op, a, b) => {
                let ta = self.type_of(a, in_loop)?;
                let tb = self.type_of(b, in_loop)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        self.expect(Ty::Bool, ta, "logical operand")?;
                        self.expect(Ty::Bool, tb, "logical operand")?;
                        Ok(Ty::Bool)
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul => match (ta, tb) {
                        (Ty::Int, Ty::Int) => Ok(Ty::Int),
                        (Ty::Float | Ty::Int, Ty::Float | Ty::Int) => Ok(Ty::Float),
                        _ => Err(UdfError::TypeMismatch {
                            context: "arithmetic operand".into(),
                            expected: Ty::Float,
                            found: if matches!(ta, Ty::Int | Ty::Float) {
                                tb
                            } else {
                                ta
                            },
                        }),
                    },
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        let comparable = matches!(
                            (ta, tb),
                            (Ty::Int | Ty::Float, Ty::Int | Ty::Float)
                                | (Ty::Vertex, Ty::Vertex)
                                | (Ty::Bool, Ty::Bool)
                        );
                        if comparable {
                            Ok(Ty::Bool)
                        } else {
                            Err(UdfError::TypeMismatch {
                                context: "comparison operand".into(),
                                expected: ta,
                                found: tb,
                            })
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_udfs;

    fn schema(entries: &[(&str, Ty)]) -> BTreeMap<String, Ty> {
        entries.iter().map(|(n, t)| (n.to_string(), *t)).collect()
    }

    #[test]
    fn paper_udfs_typecheck() {
        check(&paper_udfs::bfs_udf(), &schema(&[("frontier", Ty::Bool)])).unwrap();
        check(
            &paper_udfs::mis_udf(),
            &schema(&[("active", Ty::Bool), ("color", Ty::Int)]),
        )
        .unwrap();
        check(&paper_udfs::kcore_udf(3), &schema(&[("active", Ty::Bool)])).unwrap();
        check(
            &paper_udfs::kmeans_udf(),
            &schema(&[("assigned", Ty::Bool), ("cluster", Ty::Int)]),
        )
        .unwrap();
        check(
            &paper_udfs::sampling_udf(),
            &schema(&[("weight", Ty::Float), ("r", Ty::Float)]),
        )
        .unwrap();
    }

    #[test]
    fn unknown_property_rejected() {
        let err = check(&paper_udfs::bfs_udf(), &schema(&[])).unwrap_err();
        assert_eq!(err, UdfError::UnknownProperty("frontier".into()));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let udf = UdfFn::new("bad", Ty::Bool, vec![Stmt::Break]);
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::OutsideLoop("break".into()))
        );
    }

    #[test]
    fn neighbor_outside_loop_rejected() {
        let udf = UdfFn::new("bad", Ty::Vertex, vec![Stmt::Emit(Expr::CurrentNeighbor)]);
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::OutsideLoop("u".into()))
        );
    }

    #[test]
    fn type_mismatch_in_condition() {
        let udf = UdfFn::new(
            "bad",
            Ty::Bool,
            vec![Stmt::for_neighbors(vec![Stmt::if_(
                Expr::i(1),
                vec![Stmt::Break],
            )])],
        );
        assert!(matches!(
            check(&udf, &schema(&[])),
            Err(UdfError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn undefined_local_rejected() {
        let udf = UdfFn::new("bad", Ty::Int, vec![Stmt::assign("x", Expr::i(1))]);
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::UndefinedLocal("x".into()))
        );
    }

    #[test]
    fn duplicate_local_rejected() {
        let udf = UdfFn::new(
            "bad",
            Ty::Int,
            vec![
                Stmt::let_("x", Ty::Int, Expr::i(1)),
                Stmt::let_("x", Ty::Int, Expr::i(2)),
            ],
        );
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::DuplicateLocal("x".into()))
        );
    }

    #[test]
    fn in_loop_redeclaration_rejected() {
        // Used to be silently allowed (`is_some() && !in_loop`), shadowing
        // the carried local the analyzer extracts.
        let udf = UdfFn::new(
            "bad",
            Ty::Int,
            vec![
                Stmt::let_("cnt", Ty::Int, Expr::i(0)),
                Stmt::for_neighbors(vec![
                    Stmt::let_("cnt", Ty::Int, Expr::i(7)),
                    Stmt::assign("cnt", Expr::local("cnt").add(Expr::i(1))),
                    Stmt::if_(Expr::local("cnt").ge(Expr::i(3)), vec![Stmt::Break]),
                ]),
                Stmt::Emit(Expr::local("cnt")),
            ],
        );
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::DuplicateLocal("cnt".into()))
        );
        // And the collecting checker anchors it to the shadowing statement
        // (pre-order id 2: let, for, inner let).
        let diags = check_all(&udf, &schema(&[]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E005");
        assert_eq!(diags[0].stmt, Some(2));
    }

    #[test]
    fn check_all_collects_multiple_errors_in_order() {
        let udf = UdfFn::new(
            "bad",
            Ty::Int,
            vec![
                Stmt::assign("x", Expr::i(1)),       // 0: undefined local
                Stmt::Break,                         // 1: break outside loop
                Stmt::Emit(Expr::prop_v("missing")), // 2: unknown property
            ],
        );
        let diags = check_all(&udf, &schema(&[]));
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["E001", "E004", "E002"]);
        assert_eq!(diags[0].stmt, Some(0));
        assert_eq!(diags[1].stmt, Some(1));
        assert_eq!(diags[2].stmt, Some(2));
        // the fail-fast wrapper reports the first of these
        assert_eq!(
            check(&udf, &schema(&[])),
            Err(UdfError::UndefinedLocal("x".into()))
        );
    }

    #[test]
    fn int_widens_to_float() {
        let udf = UdfFn::new(
            "ok",
            Ty::Float,
            vec![
                Stmt::let_("x", Ty::Float, Expr::i(1)),
                Stmt::Emit(Expr::local("x").add(Expr::i(2))),
            ],
        );
        check(&udf, &schema(&[])).unwrap();
    }
}
