//! Diagnostics: source spans, severities, error codes, and rendering.
//!
//! The parser records a byte-offset [`Span`] for every statement it produces
//! (see [`crate::parser::parse_udf_with_spans`]); the checker, the dataflow
//! analyses, and the lint pass all report findings as [`Diagnostic`]s keyed by
//! the statement's pre-order index ([`StmtId`]). Attaching a [`SpanMap`] turns
//! those statement ids into concrete byte ranges so a finding can be rendered
//! with line/column information and a caret underline, clippy-style.
//!
//! AST nodes deliberately carry no position information — structural equality
//! (`parse(pretty(udf)) == udf`) is load-bearing for the round-trip tests —
//! so spans live in this side table instead.

use std::fmt;

/// Pre-order index of a statement within a [`crate::ast::UdfFn`] body.
///
/// The numbering visits a statement before its children and the `then`
/// branch before the `else` branch, which is exactly the order in which the
/// recursive-descent parser produces statements; the parser's [`SpanMap`] and
/// the CFG's statement table therefore agree on ids by construction.
pub type StmtId = usize;

/// A half-open byte range `[start, end)` into the UDF source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character covered by the span.
    pub start: usize,
    /// Byte offset one past the last character covered by the span.
    pub end: usize,
}

impl Span {
    /// Builds a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

/// How serious a diagnostic is.
///
/// `Error` findings make `symple-lint` (and CI) fail; `Warning` findings are
/// reported but do not gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal code; does not fail the lint gate.
    Warning,
    /// A program the engine would reject; fails the lint gate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single finding produced by the checker or the lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`E001`–`E007` for checker errors,
    /// `W001`–`W008` for lint warnings, `E000` for parse errors).
    pub code: &'static str,
    /// Whether the finding gates (`Error`) or merely advises (`Warning`).
    pub severity: Severity,
    /// The statement the finding is anchored to, if any.
    pub stmt: Option<StmtId>,
    /// Source byte range, filled in by [`Diagnostic::attach_span`] /
    /// [`attach_spans`] when a [`SpanMap`] is available.
    pub span: Option<Span>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic with no location.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            stmt: None,
            span: None,
            message: message.into(),
        }
    }

    /// Builds a warning-severity diagnostic with no location.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            stmt: None,
            span: None,
            message: message.into(),
        }
    }

    /// Anchors the diagnostic to a statement id.
    pub fn with_stmt(mut self, stmt: StmtId) -> Self {
        self.stmt = Some(stmt);
        self
    }

    /// Looks the anchored statement up in `spans` and records its byte range.
    pub fn attach_span(&mut self, spans: &SpanMap) {
        if let Some(id) = self.stmt {
            if self.span.is_none() {
                self.span = spans.get(id);
            }
        }
    }

    /// Renders the diagnostic against `src` in a compact rustc-like format.
    ///
    /// With a span the output includes the source line and a caret underline;
    /// without one only the headline is produced.
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            let (line_no, col, line) = locate(src, span.start);
            out.push_str(&format!("\n  --> line {line_no}, col {col}\n"));
            let gutter = line_no.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n{gutter} | {line}\n{pad} | "));
            // Caret run: from the span start to its end, clipped to this line
            // and trimmed of trailing whitespace the parser swallowed.
            let text = &src[span.start..span.end.min(src.len()).max(span.start)];
            let trimmed = text.trim_end().len().max(1);
            let caret_end = (col - 1 + trimmed).min(line.len()).max(col);
            out.push_str(&" ".repeat(col - 1));
            out.push_str(&"^".repeat(caret_end - (col - 1)));
        }
        out
    }
}

/// Long-form rationale for a diagnostic code (`symple-lint --explain`),
/// or `None` for an unknown code. Covers `E000`–`E007` and
/// `W001`–`W008`; the text explains *why* the finding matters for the
/// dependency-propagation machinery, not just what it says.
pub fn explain(code: &str) -> Option<&'static str> {
    Some(match code {
        "E000" => {
            "The source text does not parse. Nothing else can be checked until the \
             syntax error is fixed; the span points at the first offending byte."
        }
        "E001" => {
            "A local variable is read before any `let` declares it. The interpreter \
             and VM both assume well-scoped programs, so an undefined local would \
             panic at runtime; the checker rejects it up front."
        }
        "E002" => {
            "The UDF reads a property array the schema does not declare. Property \
             reads resolve to engine-owned arrays at bind time; an unknown name \
             would only fail once a signal actually executes."
        }
        "E003" => {
            "An expression's operand types do not match (e.g. adding a bool to an \
             int). The executors assume a well-typed program and use unchecked \
             conversions in the hot loop."
        }
        "E004" => {
            "`break` or `u` (the current neighbour) appears outside the neighbour \
             loop. Loop-carried dependency is defined per neighbour segment; these \
             constructs have no meaning elsewhere."
        }
        "E005" => {
            "Two `let`s declare the same name. Carried-state restore is keyed by \
             name, so shadowing would make the dependency payload ambiguous."
        }
        "E006" => {
            "Nested neighbour loops are not supported: the dependency state machine \
             assumes one traversal per signal, matching the paper's UDF shape."
        }
        "E007" => {
            "The function already contains instrumentation nodes (receive/emit \
             guards). Instrumenting twice would double-restore carried state."
        }
        "W001" => {
            "A local (or its initial value) is never read. Dead locals cost \
             registers in the bytecode VM and obscure which state is genuinely \
             loop-carried."
        }
        "W002" => {
            "An `if` condition is compile-time constant. When the condition guards \
             a `break`, the dependency analysis outcome flips with it: an \
             always-false guard means no loop-carried dependency at all, an \
             always-true guard means the segment always breaks on entry."
        }
        "W003" => {
            "A statement can never execute (e.g. a write after `break`). The \
             analyses ignore unreachable code, so its presence usually signals a \
             logic error."
        }
        "W004" => {
            "A local is assigned inside the neighbour loop (syntactically carried) \
             but its value provably never crosses a machine boundary, so carried-\
             state minimization drops it from the dependency message. Usually \
             harmless; worth a look if you expected the value to propagate."
        }
        "W005" => {
            "A carried float accumulates neighbour properties. Float addition is \
             not associative, so the carried total depends on neighbour visit \
             order and may differ across partitionings (the paper accepts this \
             for sampling; differentiated propagation makes it visible)."
        }
        "W006" => {
            "The program exceeds a bytecode-compiler resource limit (registers, \
             carried slots, code size), so the engine falls back to the tree \
             interpreter. Results are identical; per-edge dispatch is slower."
        }
        "W007" => {
            "The abstract interpreter could not bound an integer carried local's \
             value range (widening hit the type's extremes), so the value ships \
             at the full 8 bytes even under `dep_width = Certified`. Bounding the \
             local (e.g. saturating against a literal threshold) lets the \
             certificate narrow the wire encoding to 1, 2 or 4 bytes."
        }
        "W008" => {
            "The break condition is not provably monotone: the analysis cannot \
             show that once it triggers it stays triggered (e.g. it compares a \
             float accumulator, or a carried value that can decrease). The latch \
             certificate fails, so `early_exit = Certified` re-evaluates every \
             skipped segment under a no-emission audit instead of trusting the \
             skip bit outright."
        }
        _ => return None,
    })
}

/// Fills in the `span` field of every diagnostic that has a statement anchor.
pub fn attach_spans(diags: &mut [Diagnostic], spans: &SpanMap) {
    for d in diags.iter_mut() {
        d.attach_span(spans);
    }
}

/// Renders a batch of diagnostics against `src`, one block per finding,
/// separated by blank lines.
pub fn render_diagnostics(src: &str, diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.render(src))
        .collect::<Vec<_>>()
        .join("\n\n")
}

/// 1-based `(line, column, line text)` of a byte offset in `src`.
fn locate(src: &str, offset: usize) -> (usize, usize, &str) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line_no = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map(|p| p + 1).unwrap_or(0);
    let line_end = src[offset..]
        .find('\n')
        .map(|p| offset + p)
        .unwrap_or(src.len());
    (line_no, offset - line_start + 1, &src[line_start..line_end])
}

/// Side table mapping [`StmtId`]s to source [`Span`]s, produced by
/// [`crate::parser::parse_udf_with_spans`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanMap {
    spans: Vec<Span>,
}

impl SpanMap {
    /// An empty map (every lookup misses). Useful when linting an AST that
    /// was built programmatically rather than parsed.
    pub fn empty() -> Self {
        SpanMap::default()
    }

    /// Number of statements with recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the map holds no spans at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span recorded for statement `id`, if any.
    pub fn get(&self, id: StmtId) -> Option<Span> {
        self.spans.get(id).copied()
    }

    /// Reserves the next pre-order slot, returning its id. The parser calls
    /// this on entry to a statement and patches the end offset on exit.
    pub(crate) fn reserve(&mut self, start: usize) -> StmtId {
        let id = self.spans.len();
        self.spans.push(Span::new(start, start));
        id
    }

    /// Patches the end offset of a previously reserved slot.
    pub(crate) fn finish(&mut self, id: StmtId, end: usize) {
        let s = &mut self.spans[id];
        s.end = end.max(s.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_reports_line_and_column() {
        let src = "ab\ncdef\ng";
        assert_eq!(locate(src, 0), (1, 1, "ab"));
        assert_eq!(locate(src, 4), (2, 2, "cdef"));
        assert_eq!(locate(src, 8), (3, 1, "g"));
    }

    #[test]
    fn render_includes_caret_under_span() {
        let src = "let x = 1;\nbreak;\n";
        let mut d = Diagnostic::error("E004", "`break` outside the neighbour loop").with_stmt(1);
        let mut spans = SpanMap::empty();
        let a = spans.reserve(0);
        spans.finish(a, 10);
        let b = spans.reserve(11);
        spans.finish(b, 17);
        d.attach_span(&spans);
        let rendered = d.render(src);
        assert!(rendered.contains("error[E004]"));
        assert!(rendered.contains("line 2, col 1"));
        assert!(rendered.contains("^^^^^^"));
    }

    #[test]
    fn no_span_renders_headline_only() {
        let d = Diagnostic::warning("W001", "local `x` is never read");
        assert_eq!(d.render(""), "warning[W001]: local `x` is never read");
    }
}
