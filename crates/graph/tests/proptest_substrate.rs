//! Property-based tests of the graph substrate: CSR/Graph structural
//! invariants, bitmap algebra, builder semantics, and edge-list I/O
//! round-trips over arbitrary inputs.

use proptest::prelude::*;
use symple_graph::{read_edge_list, write_edge_list, Bitmap, GraphBuilder, Vid};

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..max_m)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_degree_sums_match_edge_count((n, edges) in arb_edges(200, 400)) {
        let mut b = GraphBuilder::new(n as usize);
        for (s, d) in &edges {
            b.add_edge(Vid::new(*s), Vid::new(*d));
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges(), edges.len());
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
    }

    #[test]
    fn forward_and_reverse_adjacency_agree((n, edges) in arb_edges(150, 300)) {
        let mut b = GraphBuilder::new(n as usize);
        for (s, d) in &edges {
            b.add_edge(Vid::new(*s), Vid::new(*d));
        }
        let g = b.dedup(true).build();
        for v in g.vertices() {
            for &d in g.out_neighbors(v) {
                prop_assert!(g.in_neighbors(d).contains(&v));
            }
            for &s in g.in_neighbors(v) {
                prop_assert!(g.out_neighbors(s).contains(&v));
            }
        }
    }

    #[test]
    fn neighbor_lists_are_sorted((n, edges) in arb_edges(150, 300)) {
        let mut b = GraphBuilder::new(n as usize);
        for (s, d) in &edges {
            b.add_edge(Vid::new(*s), Vid::new(*d));
        }
        let g = b.build();
        for v in g.vertices() {
            let nbrs = g.out_neighbors(v);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn symmetrize_makes_in_equal_out((n, edges) in arb_edges(100, 200)) {
        let mut b = GraphBuilder::new(n as usize);
        for (s, d) in &edges {
            b.add_edge(Vid::new(*s), Vid::new(*d));
        }
        let g = b.symmetrize(true).dedup(true).build();
        for v in g.vertices() {
            prop_assert_eq!(g.in_neighbors(v), g.out_neighbors(v));
        }
    }

    #[test]
    fn range_query_equals_filter(
        (n, edges) in arb_edges(120, 250),
        lo in 0u32..120,
        hi in 0u32..120,
    ) {
        let (lo, hi) = (lo.min(hi).min(n), hi.max(lo).min(n));
        let mut b = GraphBuilder::new(n as usize);
        for (s, d) in &edges {
            b.add_edge(Vid::new(*s), Vid::new(*d));
        }
        let g = b.build();
        for v in g.vertices() {
            let ranged = g.in_neighbors_in_range(v, Vid::new(lo), Vid::new(hi));
            let filtered: Vec<Vid> = g
                .in_neighbors(v)
                .iter()
                .copied()
                .filter(|u| lo <= u.raw() && u.raw() < hi)
                .collect();
            prop_assert_eq!(ranged, &filtered[..]);
        }
    }

    #[test]
    fn edge_list_io_roundtrip((n, edges) in arb_edges(100, 200)) {
        let mut b = GraphBuilder::new(n as usize);
        for (s, d) in &edges {
            b.add_edge(Vid::new(*s), Vid::new(*d));
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(n as usize)).unwrap();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort();
        e2.sort();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn bitmap_matches_reference_set(ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..200)) {
        let mut bm = Bitmap::new(500);
        let mut reference = std::collections::BTreeSet::new();
        for (i, set) in ops {
            if set {
                bm.set(i);
                reference.insert(i);
            } else {
                bm.clear(i);
                reference.remove(&i);
            }
        }
        prop_assert_eq!(bm.count_ones(), reference.len());
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expect: Vec<usize> = reference.into_iter().collect();
        prop_assert_eq!(ones, expect);
    }

    #[test]
    fn bitmap_extract_assign_roundtrip(
        bits in proptest::collection::vec(0usize..512, 0..64),
        start_word in 0usize..4,
        len_words in 1usize..4,
    ) {
        let mut src = Bitmap::new(512);
        for &b in &bits {
            src.set(b);
        }
        let start = start_word * 64;
        let end = (start + len_words * 64).min(512);
        let words = src.extract_range_words(start, end);
        let mut dst = Bitmap::new(512);
        dst.set_all(); // assign must overwrite stale ones
        dst.assign_range_words(start, end, &words);
        for i in start..end {
            prop_assert_eq!(dst.get(i), src.get(i), "bit {}", i);
        }
        // outside the range, dst keeps its prior value
        for i in 0..start {
            prop_assert!(dst.get(i));
        }
    }
}
