//! Recursive-matrix (R-MAT) graph generator.
//!
//! The paper's synthetic datasets (`s27`, `s28`, `s29`) are R-MAT graphs
//! generated "with the same generator parameters as in Graph500" (§7.1):
//! quadrant probabilities a = 0.57, b = 0.19, c = 0.19, d = 0.05. Scale `s`
//! means 2^s vertices; edge factor `ef` means `ef · 2^s` directed edges.
//!
//! Our stand-ins for the real-world datasets (Twitter-2010 etc.) are also
//! R-MAT graphs with matching edge factors; see `DESIGN.md` §2.

use crate::{Graph, GraphBuilder, Rng64, Vid};

/// Configuration for the R-MAT generator.
///
/// # Example
///
/// ```
/// use symple_graph::RmatConfig;
/// let g = RmatConfig::graph500(8, 8).seed(42).generate();
/// assert_eq!(g.num_vertices(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average directed edges per vertex.
    pub edge_factor: u32,
    /// Quadrant probability a (top-left).
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// RNG seed.
    pub rng_seed: u64,
    /// Whether to add reverse edges (undirected view), dedup, and drop
    /// self-loops, as the Graph500 kernel does before BFS.
    pub clean: bool,
}

impl RmatConfig {
    /// Graph500 reference parameters (a=0.57, b=0.19, c=0.19, d=0.05).
    pub fn graph500(scale: u32, edge_factor: u32) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            rng_seed: 1,
            clean: false,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Enables symmetrization + dedup + self-loop removal.
    pub fn cleaned(mut self, yes: bool) -> Self {
        self.clean = yes;
        self
    }

    /// Runs the generator.
    ///
    /// # Panics
    ///
    /// Panics if `scale` ≥ 32 or the quadrant probabilities are not a
    /// sub-distribution (a + b + c ≤ 1, all non-negative).
    pub fn generate(&self) -> Graph {
        rmat(*self)
    }
}

/// Generates an R-MAT graph per `config`. See [`RmatConfig`].
///
/// # Panics
///
/// Panics if `config.scale >= 32` or probabilities are invalid.
pub fn rmat(config: RmatConfig) -> Graph {
    assert!(config.scale < 32, "scale must fit u32 vertex ids");
    let RmatConfig { a, b, c, .. } = config;
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-12,
        "invalid R-MAT probabilities"
    );
    let n = 1usize << config.scale;
    let m = n * config.edge_factor as usize;
    let mut rng = Rng64::seed_from_u64(config.rng_seed);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let (src, dst) = sample_edge(config.scale, a, b, c, &mut rng);
        builder.add_edge(Vid::new(src), Vid::new(dst));
    }
    if config.clean {
        builder.symmetrize(true).dedup(true).drop_self_loops(true);
    }
    builder.build()
}

/// Draws one edge by descending `scale` levels of the recursive matrix.
fn sample_edge(scale: u32, a: f64, b: f64, c: f64, rng: &mut Rng64) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r = rng.gen_f64();
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            dst |= 1;
        } else if r < a + b + c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_config() {
        let g = RmatConfig::graph500(6, 4).generate();
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 256);
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = RmatConfig::graph500(6, 4).seed(7).generate();
        let g2 = RmatConfig::graph500(6, 4).seed(7).generate();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        let g3 = RmatConfig::graph500(6, 4).seed(8).generate();
        assert_ne!(e1, g3.edges().collect::<Vec<_>>());
    }

    #[test]
    fn skewed_degree_distribution() {
        // R-MAT with Graph500 parameters must be heavily skewed: the max
        // in-degree should far exceed the average.
        let g = RmatConfig::graph500(10, 16).generate();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        assert!(
            max_in as f64 > 8.0 * avg,
            "max in-degree {max_in} not skewed vs avg {avg}"
        );
    }

    #[test]
    fn cleaned_graph_is_symmetric_simple() {
        let g = RmatConfig::graph500(7, 8).cleaned(true).generate();
        for (s, d) in g.edges() {
            assert_ne!(s, d, "self-loop survived cleaning");
            assert!(g.out_neighbors(d).contains(&s), "missing reverse edge");
        }
        // dedup: sorted neighbor lists have no adjacent duplicates
        for v in g.vertices() {
            let nbrs = g.out_neighbors(v);
            for w in nbrs.windows(2) {
                assert_ne!(w[0], w[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT probabilities")]
    fn bad_probabilities_panic() {
        let mut cfg = RmatConfig::graph500(4, 2);
        cfg.a = 0.9;
        cfg.b = 0.9;
        cfg.generate();
    }
}
