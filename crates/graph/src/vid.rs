//! Vertex identifiers.

use std::fmt;

/// A vertex identifier.
///
/// `Vid` is a transparent newtype over `u32`, which bounds graphs at
/// 2^32 − 1 vertices — the same representation Gemini uses, and enough for
/// every dataset in the paper's evaluation. Using a newtype (rather than a
/// bare `u32`) keeps vertex ids from being confused with degrees, counts,
/// machine ranks and the many other integers that flow through a
/// distributed engine.
///
/// # Example
///
/// ```
/// use symple_graph::Vid;
/// let v = Vid::new(7);
/// assert_eq!(v.index(), 7usize);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Vid(u32);

impl Vid {
    /// Creates a vertex id from its raw `u32` value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Vid(raw)
    }

    /// Creates a vertex id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Vid(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, suitable for indexing per-vertex arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Vid {
    #[inline]
    fn from(raw: u32) -> Self {
        Vid(raw)
    }
}

impl From<Vid> for u32 {
    #[inline]
    fn from(v: Vid) -> Self {
        v.0
    }
}

impl From<Vid> for usize {
    #[inline]
    fn from(v: Vid) -> Self {
        v.index()
    }
}

impl fmt::Debug for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vid({})", self.0)
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Iterator over a contiguous range of vertex ids, produced by [`Vid::range`].
#[derive(Debug, Clone)]
pub struct VidRange {
    next: u32,
    end: u32,
}

impl Vid {
    /// Iterates over vertex ids in `[start, end)`.
    ///
    /// ```
    /// use symple_graph::Vid;
    /// let ids: Vec<_> = Vid::range(1, 4).map(|v| v.raw()).collect();
    /// assert_eq!(ids, [1, 2, 3]);
    /// ```
    pub fn range(start: u32, end: u32) -> VidRange {
        VidRange { next: start, end }
    }
}

impl Iterator for VidRange {
    type Item = Vid;

    #[inline]
    fn next(&mut self) -> Option<Vid> {
        if self.next < self.end {
            let v = Vid(self.next);
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for VidRange {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let v = Vid::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(Vid::from(42u32), v);
    }

    #[test]
    fn from_index_ok() {
        assert_eq!(Vid::from_index(5).raw(), 5);
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds")]
    fn from_index_overflow_panics() {
        let _ = Vid::from_index(usize::try_from(u32::MAX).unwrap() + 1);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(Vid::new(1) < Vid::new(2));
        assert_eq!(Vid::new(3), Vid::new(3));
    }

    #[test]
    fn range_iterates() {
        let v: Vec<_> = Vid::range(0, 3).collect();
        assert_eq!(v, [Vid::new(0), Vid::new(1), Vid::new(2)]);
        assert_eq!(Vid::range(5, 5).count(), 0);
        assert_eq!(Vid::range(2, 9).len(), 7);
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", Vid::new(0)), "v0");
        assert_eq!(format!("{:?}", Vid::new(0)), "Vid(0)");
    }
}
