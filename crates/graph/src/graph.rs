//! The directed graph type used throughout the reproduction.

use crate::{Csr, Vid};
use std::fmt;

/// A directed graph with both forward (out-edge) and reverse (in-edge)
/// adjacency.
///
/// The engines need both directions: push (sparse) mode traverses out-edges
/// of frontier vertices; pull (dense) mode — where loop-carried dependency
/// matters — traverses in-edges of candidate vertices. Construct via
/// [`crate::GraphBuilder`] or a generator.
#[derive(Clone)]
pub struct Graph {
    out: Csr,
    incoming: Csr,
}

impl Graph {
    /// Assembles a graph from `(src, dst)` pairs.
    ///
    /// This is a low-level constructor that keeps duplicates and self-loops
    /// exactly as given; prefer [`crate::GraphBuilder`] which can
    /// deduplicate, drop self-loops, and symmetrize.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(Vid, Vid)]) -> Self {
        let out = Csr::from_edges(num_vertices, edges);
        let reversed: Vec<(Vid, Vid)> = edges.iter().map(|&(s, d)| (d, s)).collect();
        let incoming = Csr::from_edges(num_vertices, &reversed);
        Graph { out, incoming }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Sorted out-neighbors of `v` (targets of edges leaving `v`).
    #[inline]
    pub fn out_neighbors(&self, v: Vid) -> &[Vid] {
        self.out.neighbors(v)
    }

    /// Sorted in-neighbors of `v` (sources of edges entering `v`).
    #[inline]
    pub fn in_neighbors(&self, v: Vid) -> &[Vid] {
        self.incoming.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: Vid) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Vid) -> usize {
        self.incoming.degree(v)
    }

    /// The forward CSR.
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// The reverse CSR.
    pub fn in_csr(&self) -> &Csr {
        &self.incoming
    }

    /// Iterates all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = Vid> + '_ {
        Vid::range(0, self.num_vertices() as u32)
    }

    /// Iterates `(src, dst)` over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (Vid, Vid)> + '_ {
        self.out.iter_edges()
    }

    /// In-neighbors of `v` restricted to ids in `[lo, hi)` — the slice of
    /// `v`'s in-edges owned by one partition under outgoing edge-cut.
    pub fn in_neighbors_in_range(&self, v: Vid, lo: Vid, hi: Vid) -> &[Vid] {
        self.incoming.neighbors_in_range(v, lo, hi)
    }

    /// The transpose graph (every edge reversed). Since a [`Graph`]
    /// already stores both directions, this just swaps the two CSRs —
    /// useful for backward traversals (e.g. the backward reachability
    /// phase of SCC detection).
    pub fn transpose(&self) -> Graph {
        Graph {
            out: self.incoming.clone(),
            incoming: self.out.clone(),
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(vertices={}, edges={})",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Vid {
        Vid::new(i)
    }

    #[test]
    fn directions_are_consistent() {
        let g = Graph::from_edges(4, &[(v(0), v(1)), (v(2), v(1)), (v(1), v(3))]);
        assert_eq!(g.out_neighbors(v(0)), &[v(1)]);
        assert_eq!(g.in_neighbors(v(1)), &[v(0), v(2)]);
        assert_eq!(g.out_degree(v(1)), 1);
        assert_eq!(g.in_degree(v(3)), 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn every_out_edge_has_an_in_edge() {
        let edges = [(v(0), v(1)), (v(1), v(2)), (v(2), v(0)), (v(0), v(2))];
        let g = Graph::from_edges(3, &edges);
        for (s, d) in g.edges() {
            assert!(g.in_neighbors(d).contains(&s));
        }
        let total_in: usize = g.vertices().map(|u| g.in_degree(u)).sum();
        assert_eq!(total_in, g.num_edges());
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = Graph::from_edges(4, &[(v(0), v(1)), (v(2), v(1)), (v(1), v(3))]);
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        for (s, d) in g.edges() {
            assert!(t.out_neighbors(d).contains(&s));
        }
        // double transpose is identity on adjacency
        let tt = t.transpose();
        for u in g.vertices() {
            assert_eq!(tt.out_neighbors(u), g.out_neighbors(u));
        }
    }

    #[test]
    fn vertices_iterator() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(g.vertices().count(), 3);
    }
}
