//! Dense bit vectors over vertex ids.
//!
//! Bitmaps are the workhorse of the runtime: frontiers, visited sets,
//! dependency "skip" state, and active-vertex masks are all bitmaps. The
//! paper's dependency messages for control dependency are literally "a bit
//! map (one bit per vertex) circulating around all mirrors and master"
//! (§3), so the wire format of a control dependency message is a slice of
//! this bitmap's words.

use crate::Vid;
use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length dense bit vector indexed by [`Vid`] or `usize`.
///
/// # Example
///
/// ```
/// use symple_graph::{Bitmap, Vid};
/// let mut bm = Bitmap::new(100);
/// bm.set(Vid::new(3).index());
/// bm.set(70);
/// assert!(bm.get(3));
/// assert!(!bm.get(4));
/// assert_eq!(bm.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to one. Returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let prev = *w & mask != 0;
        *w |= mask;
        prev
    }

    /// Clears bit `i` to zero.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Sets bit `i` to `value`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Reads the bit for vertex `v`.
    #[inline]
    pub fn get_vid(&self, v: Vid) -> bool {
        self.get(v.index())
    }

    /// Sets the bit for vertex `v`. Returns the previous value.
    #[inline]
    pub fn set_vid(&mut self, v: Vid) -> bool {
        self.set(v.index())
    }

    /// Zeroes every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit (tail bits beyond `len` stay zero).
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place union of the bit range `[start, end)` with raw `words`
    /// (little-endian bit order, bit 0 of `words[0]` is `start`).
    ///
    /// This is the receive path of a control-dependency message: the sender
    /// transmits a word-aligned slice covering one partition and the
    /// receiver ORs it into its own skip bitmap.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, not word-aligned at `start`,
    /// or `words` is shorter than the range requires.
    pub fn union_range_words(&mut self, start: usize, end: usize, words: &[u64]) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        assert_eq!(start % WORD_BITS, 0, "range start must be word aligned");
        let nwords = (end - start).div_ceil(WORD_BITS);
        assert!(words.len() >= nwords, "source words too short");
        let w0 = start / WORD_BITS;
        for (dst, src) in self.words[w0..w0 + nwords].iter_mut().zip(words) {
            *dst |= *src;
        }
        self.mask_tail();
    }

    /// Overwrites the bit range `[start, end)` with raw `words` (bit 0 of
    /// `words[0]` is `start`). Bits beyond `end` inside the final word are
    /// zeroed only if they lie beyond `len` (callers use word-aligned
    /// partition boundaries, so interior ranges end on word boundaries).
    ///
    /// This is the receive path of a frontier-synchronisation message:
    /// the owner's slice *replaces* the local copy, so cleared bits
    /// propagate (unlike [`Bitmap::union_range_words`]).
    ///
    /// # Panics
    ///
    /// Panics like [`Bitmap::union_range_words`].
    pub fn assign_range_words(&mut self, start: usize, end: usize, words: &[u64]) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        assert_eq!(start % WORD_BITS, 0, "range start must be word aligned");
        let nwords = (end - start).div_ceil(WORD_BITS);
        assert!(words.len() >= nwords, "source words too short");
        let w0 = start / WORD_BITS;
        self.words[w0..w0 + nwords].copy_from_slice(&words[..nwords]);
        self.mask_tail();
    }

    /// Copies the bit range `[start, end)` out as raw words
    /// (the send path of a control-dependency message).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `start` is not word-aligned.
    pub fn extract_range_words(&self, start: usize, end: usize) -> Vec<u64> {
        assert!(start <= end && end <= self.len, "range out of bounds");
        assert_eq!(start % WORD_BITS, 0, "range start must be word aligned");
        let nwords = (end - start).div_ceil(WORD_BITS);
        let w0 = start / WORD_BITS;
        let mut out = self.words[w0..w0 + nwords].to_vec();
        let tail = (end - start) % WORD_BITS;
        if tail != 0 {
            if let Some(last) = out.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        out
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw word storage (read-only), little-endian bit order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap(len={}, ones={})", self.len, self.count_ones())
    }
}

/// Iterator over set-bit indices, produced by [`Bitmap::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new(130);
        assert!(!bm.get(0));
        assert!(!bm.set(129));
        assert!(bm.get(129));
        assert!(bm.set(129), "second set reports previous value");
        bm.clear(129);
        assert!(!bm.get(129));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn set_all_respects_tail() {
        let mut bm = Bitmap::new(70);
        bm.set_all();
        assert_eq!(bm.count_ones(), 70);
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn union() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set(1);
        b.set(2);
        b.set(1);
        a.union_with(&b);
        assert!(a.get(1) && a.get(2));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut bm = Bitmap::new(200);
        for i in [0usize, 5, 63, 64, 65, 190] {
            bm.set(i);
        }
        let ones: Vec<_> = bm.iter_ones().collect();
        assert_eq!(ones, [0, 5, 63, 64, 65, 190]);
    }

    #[test]
    fn extract_and_union_range_roundtrip() {
        let mut bm = Bitmap::new(256);
        for i in [64usize, 70, 100, 127] {
            bm.set(i);
        }
        let words = bm.extract_range_words(64, 128);
        let mut other = Bitmap::new(256);
        other.union_range_words(64, 128, &words);
        let ones: Vec<_> = other.iter_ones().collect();
        assert_eq!(ones, [64, 70, 100, 127]);
    }

    #[test]
    fn extract_masks_partial_tail() {
        let mut bm = Bitmap::new(256);
        bm.set(64);
        bm.set(100); // beyond the extracted range [64, 96)
        let words = bm.extract_range_words(64, 96);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0], 1); // only bit 64 visible
    }

    #[test]
    fn assign_range_overwrites() {
        let mut bm = Bitmap::new(192);
        bm.set(64);
        bm.set(65);
        // Owner says: only bit 66 is set in [64, 128).
        let mut owner = Bitmap::new(192);
        owner.set(66);
        let words = owner.extract_range_words(64, 128);
        bm.assign_range_words(64, 128, &words);
        let ones: Vec<_> = bm.iter_ones().collect();
        assert_eq!(ones, [66], "stale bits must be cleared by assign");
    }

    #[test]
    fn assign_both_ways() {
        let mut bm = Bitmap::new(8);
        bm.assign(3, true);
        assert!(bm.get(3));
        bm.assign(3, false);
        assert!(!bm.get(3));
    }

    #[test]
    fn vid_accessors() {
        let mut bm = Bitmap::new(10);
        bm.set_vid(Vid::new(9));
        assert!(bm.get_vid(Vid::new(9)));
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.iter_ones().count(), 0);
    }
}
