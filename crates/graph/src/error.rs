//! Error types for graph construction and I/O.

use std::fmt;
use std::io;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced while building, loading, or saving graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id at or beyond the declared vertex count.
    VertexOutOfBounds {
        /// The offending vertex id (raw value).
        vid: u32,
        /// The number of vertices in the graph.
        num_vertices: u32,
    },
    /// An edge-list line could not be parsed.
    ParseEdge {
        /// 1-based line number.
        line: usize,
        /// The unparsable content.
        content: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vid, num_vertices } => write!(
                f,
                "vertex id {vid} out of bounds for graph with {num_vertices} vertices"
            ),
            GraphError::ParseEdge { line, content } => {
                write!(f, "cannot parse edge at line {line}: {content:?}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfBounds {
            vid: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex id 9"));
        let e = GraphError::ParseEdge {
            line: 3,
            content: "a b".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::from(io::Error::other("x"));
        assert!(e.to_string().contains("i/o error"));
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        let e = GraphError::ParseEdge {
            line: 1,
            content: String::new(),
        };
        assert!(e.source().is_none());
    }
}
