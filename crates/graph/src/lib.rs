//! Graph storage substrate for the SympleGraph reproduction.
//!
//! This crate provides everything the distributed engines need to know about
//! graphs *as data*: compressed sparse row storage ([`Csr`]), a directed
//! [`Graph`] bundling forward and reverse adjacency, dense [`Bitmap`]s and
//! Ligra-style sparse/dense [`VertexSubset`]s, degree statistics, simple
//! text/binary I/O, and a family of graph generators (most importantly the
//! Graph500-parameterised R-MAT generator used by the paper's synthetic
//! datasets).
//!
//! Nothing in this crate knows about machines, partitions, or communication;
//! that lives in `symple-core`.
//!
//! # Example
//!
//! ```
//! use symple_graph::{GraphBuilder, Vid};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(Vid::new(0), Vid::new(1));
//! b.add_edge(Vid::new(1), Vid::new(2));
//! b.add_edge(Vid::new(2), Vid::new(3));
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_degree(Vid::new(1)), 1);
//! assert_eq!(g.in_degree(Vid::new(2)), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod builder;
mod csr;
mod error;
mod generators;
mod graph;
mod io;
mod rmat;
mod rng;
mod stats;
mod vertex_set;
mod vid;

pub use bitmap::{Bitmap, IterOnes};
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use error::{GraphError, Result};
pub use generators::{barabasi_albert, complete, cycle, erdos_renyi, grid, path, star};
pub use graph::Graph;
pub use io::{
    fnv1a64, load_snap, load_snap_cached, read_binary, read_csr_cache, read_edge_list, read_snap,
    snap_cache_path, write_binary, write_csr_cache, write_edge_list, SnapOptions,
};
pub use rmat::{rmat, RmatConfig};
pub use rng::Rng64;
pub use stats::{high_degree_vertices, in_degree_histogram, DegreeStats, GraphStats};
pub use vertex_set::VertexSubset;
pub use vid::{Vid, VidRange};
