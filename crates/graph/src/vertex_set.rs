//! Ligra-style dual-representation vertex subsets.
//!
//! A frontier is *sparse* (an explicit id list) when few vertices are
//! active, and *dense* (a bitmap) when many are. Direction-optimizing
//! traversal (§2.2, push vs pull) keys off exactly this distinction, so the
//! engine carries frontiers as [`VertexSubset`] and converts representation
//! when the density crosses a threshold.

use crate::{Bitmap, Vid};
use std::fmt;

/// A subset of the vertices of a graph, stored sparse or dense.
///
/// # Example
///
/// ```
/// use symple_graph::{VertexSubset, Vid};
/// let mut s = VertexSubset::empty(100);
/// s.insert(Vid::new(4));
/// s.insert(Vid::new(40));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(Vid::new(4)));
/// let dense = s.to_dense();
/// assert!(dense.get(40));
/// ```
#[derive(Clone)]
pub enum VertexSubset {
    /// Explicit sorted-insertion-order list of members.
    Sparse {
        /// Total number of vertices in the universe.
        universe: usize,
        /// Member ids (unsorted, no duplicates maintained by `insert`).
        members: Vec<Vid>,
    },
    /// Bitmap of members.
    Dense {
        /// Membership bitmap sized to the universe.
        bits: Bitmap,
        /// Cached member count.
        count: usize,
    },
}

impl VertexSubset {
    /// The empty subset of a universe with `universe` vertices (sparse).
    pub fn empty(universe: usize) -> Self {
        VertexSubset::Sparse {
            universe,
            members: Vec::new(),
        }
    }

    /// A singleton subset.
    pub fn single(universe: usize, v: Vid) -> Self {
        let mut s = Self::empty(universe);
        s.insert(v);
        s
    }

    /// The full subset (dense).
    pub fn full(universe: usize) -> Self {
        let mut bits = Bitmap::new(universe);
        bits.set_all();
        VertexSubset::Dense {
            bits,
            count: universe,
        }
    }

    /// Builds a dense subset from a bitmap.
    pub fn from_bitmap(bits: Bitmap) -> Self {
        let count = bits.count_ones();
        VertexSubset::Dense { bits, count }
    }

    /// Size of the universe.
    pub fn universe(&self) -> usize {
        match self {
            VertexSubset::Sparse { universe, .. } => *universe,
            VertexSubset::Dense { bits, .. } => bits.len(),
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse { members, .. } => members.len(),
            VertexSubset::Dense { count, .. } => *count,
        }
    }

    /// Returns `true` if no vertices are members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test. O(1) dense, O(n) sparse.
    pub fn contains(&self, v: Vid) -> bool {
        match self {
            VertexSubset::Sparse { members, .. } => members.contains(&v),
            VertexSubset::Dense { bits, .. } => bits.get_vid(v),
        }
    }

    /// Inserts `v`. In sparse form the caller must not insert duplicates
    /// (debug-asserted); in dense form duplicate inserts are harmless.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn insert(&mut self, v: Vid) {
        match self {
            VertexSubset::Sparse { universe, members } => {
                assert!(v.index() < *universe, "vertex outside universe");
                debug_assert!(!members.contains(&v), "duplicate sparse insert");
                members.push(v);
            }
            VertexSubset::Dense { bits, count } => {
                if !bits.set_vid(v) {
                    *count += 1;
                }
            }
        }
    }

    /// Returns the dense bitmap form (cloning if already dense).
    pub fn to_dense(&self) -> Bitmap {
        match self {
            VertexSubset::Sparse { universe, members } => {
                let mut bits = Bitmap::new(*universe);
                for &v in members {
                    bits.set_vid(v);
                }
                bits
            }
            VertexSubset::Dense { bits, .. } => bits.clone(),
        }
    }

    /// Returns the member list in ascending order.
    pub fn to_sorted_vec(&self) -> Vec<Vid> {
        match self {
            VertexSubset::Sparse { members, .. } => {
                let mut m = members.clone();
                m.sort_unstable();
                m
            }
            VertexSubset::Dense { bits, .. } => bits.iter_ones().map(Vid::from_index).collect(),
        }
    }

    /// Density: members / universe (0 for an empty universe).
    pub fn density(&self) -> f64 {
        if self.universe() == 0 {
            0.0
        } else {
            self.len() as f64 / self.universe() as f64
        }
    }

    /// Returns `true` if currently in dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, VertexSubset::Dense { .. })
    }

    /// Converts in place to whichever representation suits the density,
    /// using `threshold` as the sparse→dense crossover (Ligra uses |V|/20
    /// of *edges*; for subsets a membership fraction works).
    pub fn normalize(&mut self, threshold: f64) {
        let dense_wanted = self.density() >= threshold;
        match (self.is_dense(), dense_wanted) {
            (false, true) => {
                let bits = self.to_dense();
                *self = VertexSubset::from_bitmap(bits);
            }
            (true, false) => {
                let members = self.to_sorted_vec();
                *self = VertexSubset::Sparse {
                    universe: self.universe(),
                    members,
                };
            }
            _ => {}
        }
    }
}

impl fmt::Debug for VertexSubset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VertexSubset({}/{}, {})",
            self.len(),
            self.universe(),
            if self.is_dense() { "dense" } else { "sparse" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let s = VertexSubset::empty(10);
        assert!(s.is_empty());
        let s = VertexSubset::single(10, Vid::new(3));
        assert_eq!(s.len(), 1);
        assert!(s.contains(Vid::new(3)));
        assert!(!s.contains(Vid::new(4)));
    }

    #[test]
    fn full_subset() {
        let s = VertexSubset::full(7);
        assert_eq!(s.len(), 7);
        assert!(s.is_dense());
        assert!(s.contains(Vid::new(6)));
    }

    #[test]
    fn dense_insert_counts_once() {
        let mut s = VertexSubset::from_bitmap(Bitmap::new(10));
        s.insert(Vid::new(2));
        s.insert(Vid::new(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sparse_dense_agree() {
        let mut s = VertexSubset::empty(50);
        for i in [1u32, 9, 30, 49] {
            s.insert(Vid::new(i));
        }
        let d = VertexSubset::from_bitmap(s.to_dense());
        assert_eq!(d.len(), s.len());
        assert_eq!(d.to_sorted_vec(), s.to_sorted_vec());
    }

    #[test]
    fn normalize_switches_representation() {
        let mut s = VertexSubset::empty(10);
        for i in 0..8u32 {
            s.insert(Vid::new(i));
        }
        s.normalize(0.5);
        assert!(s.is_dense());
        // remove nothing, but lower density threshold keeps it dense
        s.normalize(0.9);
        assert!(!s.is_dense());
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn density() {
        let mut s = VertexSubset::empty(4);
        s.insert(Vid::new(0));
        assert!((s.density() - 0.25).abs() < 1e-12);
        assert_eq!(VertexSubset::empty(0).density(), 0.0);
    }
}
