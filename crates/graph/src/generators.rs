//! Deterministic structured and random graph generators.
//!
//! Structured graphs (paths, cycles, stars, grids, complete graphs) are used
//! heavily by the test suites because their BFS distances, core numbers,
//! independent sets and so on are known in closed form. Erdős–Rényi and
//! Barabási–Albert generators provide non-R-MAT random graphs for shape
//! checks.

use crate::{Graph, GraphBuilder, Rng64, Vid};

/// Undirected path `0 – 1 – … – (n−1)` (each edge in both directions).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(Vid::from_index(i - 1), Vid::from_index(i));
    }
    b.symmetrize(true).build()
}

/// Undirected cycle over `n` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(Vid::from_index(i), Vid::from_index((i + 1) % n));
    }
    b.symmetrize(true).dedup(true).build()
}

/// Undirected star: vertex 0 connected to vertices `1..n`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 vertices");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(Vid::new(0), Vid::from_index(i));
    }
    b.symmetrize(true).build()
}

/// Undirected `rows × cols` grid; vertex `(r, c)` has id `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = Vid::from_index(r * cols + c);
            if c + 1 < cols {
                b.add_edge(v, Vid::from_index(r * cols + c + 1));
            }
            if r + 1 < rows {
                b.add_edge(v, Vid::from_index((r + 1) * cols + c));
            }
        }
    }
    b.symmetrize(true).build()
}

/// Complete undirected graph on `n` vertices (no self-loops).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(Vid::from_index(i), Vid::from_index(j));
        }
    }
    b.symmetrize(true).build()
}

/// Erdős–Rényi `G(n, p)` digraph (each ordered pair independently with
/// probability `p`), deterministic per `seed`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_f64() < p {
                b.add_edge(Vid::from_index(i), Vid::from_index(j));
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a small clique
/// and attaches each new vertex to `m` existing vertices chosen
/// proportionally to degree. Produces the heavy-tailed degree distribution
/// of social graphs. Undirected (symmetrized), deterministic per `seed`.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<usize> = Vec::new();
    // Seed clique on vertices 0..=m.
    for i in 0..=m {
        for j in (i + 1)..=m {
            b.add_edge(Vid::from_index(i), Vid::from_index(j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_index(endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(Vid::from_index(v), Vid::from_index(t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.symmetrize(true).dedup(true).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8); // 4 undirected edges
        assert_eq!(g.out_degree(Vid::new(0)), 1);
        assert_eq!(g.out_degree(Vid::new(2)), 2);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(6);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 2);
            assert_eq!(g.in_degree(v), 2);
        }
    }

    #[test]
    fn star_degrees() {
        let g = star(10);
        assert_eq!(g.out_degree(Vid::new(0)), 9);
        for i in 1..10 {
            assert_eq!(g.out_degree(Vid::new(i)), 1);
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // interior vertex (1,1) = id 5 has 4 neighbors
        assert_eq!(g.out_degree(Vid::new(5)), 4);
        // corner has 2
        assert_eq!(g.out_degree(Vid::new(0)), 2);
    }

    #[test]
    fn complete_graph_degrees() {
        let g = complete(5);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 90);
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a: Vec<_> = erdos_renyi(20, 0.3, 5).edges().collect();
        let b: Vec<_> = erdos_renyi(20, 0.3, 5).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn barabasi_albert_is_skewed_and_connected_enough() {
        let g = barabasi_albert(200, 3, 9);
        assert_eq!(g.num_vertices(), 200);
        for v in g.vertices() {
            assert!(g.out_degree(v) >= 1, "{v} isolated");
        }
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_deg as f64 > 3.0 * avg);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }
}
