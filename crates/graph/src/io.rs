//! Plain-text edge-list I/O.
//!
//! Format: one `src dst` pair per line, whitespace separated; `#`-prefixed
//! lines are comments (SNAP convention, which the paper's real-world
//! datasets ship in).

use crate::{Graph, GraphBuilder, GraphError, Result, Vid};
use std::io::{BufRead, BufReader, Read, Write};

/// Reads an edge list. The vertex count is `max id + 1` unless
/// `num_vertices` is given (required to represent trailing isolated
/// vertices).
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] on malformed lines,
/// [`GraphError::VertexOutOfBounds`] if an id exceeds a given
/// `num_vertices`, and [`GraphError::Io`] on read failure.
pub fn read_edge_list<R: Read>(reader: R, num_vertices: Option<usize>) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut seen_any = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok?.parse().ok() };
        let (s, d) = match (parse(parts.next()), parse(parts.next())) {
            (Some(s), Some(d)) => (s, d),
            _ => {
                return Err(GraphError::ParseEdge {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        max_id = max_id.max(s).max(d);
        seen_any = true;
        edges.push((s, d));
    }
    let n = match num_vertices {
        Some(n) => n,
        None if seen_any => max_id as usize + 1,
        None => 0,
    };
    let mut b = GraphBuilder::new(n);
    for (s, d) in edges {
        b.try_add_edge(Vid::new(s), Vid::new(d))?;
    }
    Ok(b.build())
}

/// Writes the graph as a `src dst` edge list with a size-comment header.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# vertices {} edges {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, d) in graph.edges() {
        writeln!(writer, "{} {}", s.raw(), d.raw())?;
    }
    Ok(())
}

/// Magic header of the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"SYMPLEG1";

/// Writes the graph in a compact little-endian binary format
/// (`SYMPLEG1`, vertex count, edge count, then `(src, dst)` pairs of
/// `u32`s) — 8 bytes per edge instead of text, for caching generated
/// datasets.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_binary<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    writer.write_all(BINARY_MAGIC)?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for (s, d) in graph.edges() {
        buf.extend_from_slice(&s.raw().to_le_bytes());
        buf.extend_from_slice(&d.raw().to_le_bytes());
        if buf.len() >= 64 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Reads a graph written by [`write_binary`].
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] (line 0) on a bad magic header or a
/// truncated payload, and [`GraphError::Io`] on read failure.
pub fn read_binary<R: Read>(mut reader: R) -> Result<Graph> {
    let bad = |what: &str| GraphError::ParseEdge {
        line: 0,
        content: what.to_string(),
    };
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| bad("missing magic"))?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic header"));
    }
    let mut word = [0u8; 8];
    reader
        .read_exact(&mut word)
        .map_err(|_| bad("missing vertex count"))?;
    let n = u64::from_le_bytes(word) as usize;
    reader
        .read_exact(&mut word)
        .map_err(|_| bad("missing edge count"))?;
    let m = u64::from_le_bytes(word) as usize;
    let mut payload = vec![0u8; m * 8];
    reader
        .read_exact(&mut payload)
        .map_err(|_| bad("truncated edge payload"))?;
    let mut b = GraphBuilder::new(n);
    for pair in payload.chunks_exact(8) {
        let s = u32::from_le_bytes(pair[..4].try_into().expect("4 bytes"));
        let d = u32::from_le_bytes(pair[4..].try_into().expect("4 bytes"));
        b.try_add_edge(Vid::new(s), Vid::new(d))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = crate::cycle(5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0 1\n  # another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes(), None).unwrap_err();
        match err {
            GraphError::ParseEdge { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn explicit_vertex_count_allows_isolated_tail() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn out_of_bounds_rejected_with_explicit_count() {
        let err = read_edge_list("0 9\n".as_bytes(), Some(5)).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { vid: 9, .. }));
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = crate::RmatConfig::graph500(7, 4).generate();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 16 + g.num_edges() * 8);
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn binary_roundtrip_with_isolated_tail() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(Vid::new(0), Vid::new(1));
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 10, "isolated vertices preserved");
        assert_eq!(g2.num_edges(), 1);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGIC________"[..]).unwrap_err();
        assert!(matches!(err, GraphError::ParseEdge { .. }));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = crate::path(5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::ParseEdge { .. }));
    }

    #[test]
    fn binary_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 0);
    }
}
