//! Plain-text edge-list I/O.
//!
//! Format: one `src dst` pair per line, whitespace separated; `#`-prefixed
//! lines are comments (SNAP convention, which the paper's real-world
//! datasets ship in).

use crate::{Graph, GraphBuilder, GraphError, Result, Vid};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Reads an edge list. The vertex count is `max id + 1` unless
/// `num_vertices` is given (required to represent trailing isolated
/// vertices).
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] on malformed lines,
/// [`GraphError::VertexOutOfBounds`] if an id exceeds a given
/// `num_vertices`, and [`GraphError::Io`] on read failure.
pub fn read_edge_list<R: Read>(reader: R, num_vertices: Option<usize>) -> Result<Graph> {
    let (edges, max_id, seen_any) = parse_edge_lines(reader)?;
    let n = match num_vertices {
        Some(n) => n,
        None if seen_any => max_id as usize + 1,
        None => 0,
    };
    let mut b = GraphBuilder::new(n);
    for (s, d) in edges {
        b.try_add_edge(Vid::new(s), Vid::new(d))?;
    }
    Ok(b.build())
}

/// Raw parse result: the edge pairs, the largest id seen, and whether
/// any edge was seen at all.
type ParsedEdges = (Vec<(u32, u32)>, u32, bool);

/// Parses `src dst` lines (SNAP conventions: `#` comments, blank lines,
/// arbitrary whitespace).
fn parse_edge_lines<R: Read>(reader: R) -> Result<ParsedEdges> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut seen_any = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok?.parse().ok() };
        let (s, d) = match (parse(parts.next()), parse(parts.next())) {
            (Some(s), Some(d)) => (s, d),
            _ => {
                return Err(GraphError::ParseEdge {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        max_id = max_id.max(s).max(d);
        seen_any = true;
        edges.push((s, d));
    }
    Ok((edges, max_id, seen_any))
}

/// Cleanup options applied to a SNAP edge list at load time.
///
/// The default mirrors the paper's §7.1 preprocessing (and
/// [`crate::RmatConfig`]'s `cleaned(true)`): symmetrize, deduplicate,
/// drop self-loops. The options participate in the CSR cache key, so a
/// cache written under one cleanup never satisfies a load under another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapOptions {
    /// Vertex count override (`max id + 1` when `None`).
    pub num_vertices: Option<usize>,
    /// Add the reverse of every edge (directed↔undirected conversion).
    pub symmetrize: bool,
    /// Remove duplicate edges after symmetrization.
    pub dedup: bool,
    /// Remove self-loops.
    pub drop_self_loops: bool,
}

impl Default for SnapOptions {
    fn default() -> Self {
        SnapOptions {
            num_vertices: None,
            symmetrize: true,
            dedup: true,
            drop_self_loops: true,
        }
    }
}

impl SnapOptions {
    /// Raw-graph options: keep the edge list exactly as written.
    pub fn raw() -> Self {
        SnapOptions {
            num_vertices: None,
            symmetrize: false,
            dedup: false,
            drop_self_loops: false,
        }
    }

    fn flags(&self) -> u8 {
        u8::from(self.symmetrize) | u8::from(self.dedup) << 1 | u8::from(self.drop_self_loops) << 2
    }
}

/// Reads a SNAP-format edge list (`#` comments, blank lines, whitespace
/// separated pairs) and applies the [`SnapOptions`] cleanup.
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] on malformed lines,
/// [`GraphError::VertexOutOfBounds`] if an id exceeds a given
/// `num_vertices`, and [`GraphError::Io`] on read failure.
pub fn read_snap<R: Read>(reader: R, opts: SnapOptions) -> Result<Graph> {
    let (edges, max_id, seen_any) = parse_edge_lines(reader)?;
    let n = match opts.num_vertices {
        Some(n) => n,
        None if seen_any => max_id as usize + 1,
        None => 0,
    };
    let mut b = GraphBuilder::new(n);
    b.symmetrize(opts.symmetrize)
        .dedup(opts.dedup)
        .drop_self_loops(opts.drop_self_loops);
    for (s, d) in edges {
        b.try_add_edge(Vid::new(s), Vid::new(d))?;
    }
    Ok(b.build())
}

/// Loads a SNAP edge list from disk (no cache).
///
/// # Errors
///
/// As [`read_snap`].
pub fn load_snap<P: AsRef<Path>>(path: P, opts: SnapOptions) -> Result<Graph> {
    read_snap(std::fs::File::open(path)?, opts)
}

/// The sibling path where [`load_snap_cached`] keeps the CSR cache of a
/// SNAP file (`foo.txt` → `foo.txt.csr`).
pub fn snap_cache_path<P: AsRef<Path>>(path: P) -> PathBuf {
    let p = path.as_ref();
    let mut name = p.file_name().unwrap_or_default().to_os_string();
    name.push(".csr");
    p.with_file_name(name)
}

/// Loads a SNAP edge list through an on-disk CSR cache.
///
/// The first load parses the text and writes the finished CSR next to it
/// (`<file>.csr`); later loads deserialize the CSR directly. The cache
/// is keyed by an FNV-1a fingerprint of the source bytes plus the
/// [`SnapOptions`], so editing the text or changing the cleanup options
/// transparently re-parses (and rewrites the cache). A cache that fails
/// to *write* is ignored — it is an optimization, not a requirement —
/// but a cache that exists and is unreadable for I/O reasons still
/// surfaces as an error through the fresh parse path.
///
/// The deserialized graph is bit-identical to a fresh parse: the cache
/// stores the final CSR (offsets + sorted targets) after cleanup, and
/// rebuilding from it is deterministic.
///
/// # Errors
///
/// As [`read_snap`].
pub fn load_snap_cached<P: AsRef<Path>>(path: P, opts: SnapOptions) -> Result<Graph> {
    let path = path.as_ref();
    let source = std::fs::read(path)?;
    let fingerprint = fnv1a64(&source);
    let cache = snap_cache_path(path);
    if let Ok(file) = std::fs::File::open(&cache) {
        if let Ok(graph) = read_csr_cache(BufReader::new(file), fingerprint, opts) {
            return Ok(graph);
        }
    }
    let graph = read_snap(&source[..], opts)?;
    // Best-effort cache write: a read-only directory must not fail the load.
    let _ = std::fs::File::create(&cache)
        .map_err(GraphError::Io)
        .and_then(|f| write_csr_cache(&graph, fingerprint, opts, std::io::BufWriter::new(f)));
    Ok(graph)
}

/// FNV-1a 64-bit hash (the CSR cache's source fingerprint).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Magic header of the CSR cache format.
const CSR_MAGIC: &[u8; 8] = b"SYMPLCS1";

/// Serializes the finished CSR of `graph` with the source fingerprint and
/// load options it was built under (`SYMPLCS1`, flags, vertex-count
/// override, fingerprint, |V|, |E|, out-offsets as `u64`, out-targets as
/// `u32`, all little-endian).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_csr_cache<W: Write>(
    graph: &Graph,
    fingerprint: u64,
    opts: SnapOptions,
    mut writer: W,
) -> Result<()> {
    writer.write_all(CSR_MAGIC)?;
    writer.write_all(&[opts.flags()])?;
    let nv_opt = opts.num_vertices.map_or(u64::MAX, |n| n as u64);
    writer.write_all(&nv_opt.to_le_bytes())?;
    writer.write_all(&fingerprint.to_le_bytes())?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    let mut offset = 0u64;
    for v in graph.vertices() {
        writer.write_all(&offset.to_le_bytes())?;
        offset += graph.out_degree(v) as u64;
    }
    writer.write_all(&offset.to_le_bytes())?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for (_, d) in graph.edges() {
        buf.extend_from_slice(&d.raw().to_le_bytes());
        if buf.len() >= 64 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Deserializes a CSR cache written by [`write_csr_cache`], verifying the
/// magic, the source `fingerprint`, and the load `opts` (a mismatch means
/// the cache is stale and reports as [`GraphError::ParseEdge`] line 0 so
/// callers fall back to a fresh parse).
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] on a corrupt or stale cache and
/// [`GraphError::Io`] on read failure.
pub fn read_csr_cache<R: Read>(
    mut reader: R,
    fingerprint: u64,
    opts: SnapOptions,
) -> Result<Graph> {
    let bad = |what: &str| GraphError::ParseEdge {
        line: 0,
        content: what.to_string(),
    };
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| bad("missing magic"))?;
    if &magic != CSR_MAGIC {
        return Err(bad("bad magic header"));
    }
    let mut byte = [0u8; 1];
    reader
        .read_exact(&mut byte)
        .map_err(|_| bad("missing flags"))?;
    if byte[0] != opts.flags() {
        return Err(bad("stale cache: cleanup options differ"));
    }
    let mut word = [0u8; 8];
    let mut read_u64 = |reader: &mut R, what: &str| -> Result<u64> {
        reader.read_exact(&mut word).map_err(|_| bad(what))?;
        Ok(u64::from_le_bytes(word))
    };
    let nv_opt = read_u64(&mut reader, "missing vertex-count override")?;
    if nv_opt != opts.num_vertices.map_or(u64::MAX, |n| n as u64) {
        return Err(bad("stale cache: vertex-count override differs"));
    }
    if read_u64(&mut reader, "missing fingerprint")? != fingerprint {
        return Err(bad("stale cache: source fingerprint differs"));
    }
    let n = read_u64(&mut reader, "missing vertex count")? as usize;
    let m = read_u64(&mut reader, "missing edge count")? as usize;
    let mut offsets = vec![0u8; (n + 1) * 8];
    reader
        .read_exact(&mut offsets)
        .map_err(|_| bad("truncated offsets"))?;
    let offsets: Vec<u64> = offsets
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    if offsets[n] as usize != m || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("inconsistent offsets"));
    }
    let mut targets = vec![0u8; m * 4];
    reader
        .read_exact(&mut targets)
        .map_err(|_| bad("truncated targets"))?;
    let mut edges = Vec::with_capacity(m);
    let mut src = 0usize;
    for (i, t) in targets.chunks_exact(4).enumerate() {
        while offsets[src + 1] as usize <= i {
            src += 1;
        }
        let d = u32::from_le_bytes(t.try_into().expect("4 bytes"));
        if src >= n || d as usize >= n {
            return Err(bad("edge endpoint out of bounds"));
        }
        edges.push((Vid::new(src as u32), Vid::new(d)));
    }
    Ok(Graph::from_edges(n, &edges))
}

/// Writes the graph as a `src dst` edge list with a size-comment header.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# vertices {} edges {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, d) in graph.edges() {
        writeln!(writer, "{} {}", s.raw(), d.raw())?;
    }
    Ok(())
}

/// Magic header of the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"SYMPLEG1";

/// Writes the graph in a compact little-endian binary format
/// (`SYMPLEG1`, vertex count, edge count, then `(src, dst)` pairs of
/// `u32`s) — 8 bytes per edge instead of text, for caching generated
/// datasets.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_binary<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    writer.write_all(BINARY_MAGIC)?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for (s, d) in graph.edges() {
        buf.extend_from_slice(&s.raw().to_le_bytes());
        buf.extend_from_slice(&d.raw().to_le_bytes());
        if buf.len() >= 64 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Reads a graph written by [`write_binary`].
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] (line 0) on a bad magic header or a
/// truncated payload, and [`GraphError::Io`] on read failure.
pub fn read_binary<R: Read>(mut reader: R) -> Result<Graph> {
    let bad = |what: &str| GraphError::ParseEdge {
        line: 0,
        content: what.to_string(),
    };
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| bad("missing magic"))?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic header"));
    }
    let mut word = [0u8; 8];
    reader
        .read_exact(&mut word)
        .map_err(|_| bad("missing vertex count"))?;
    let n = u64::from_le_bytes(word) as usize;
    reader
        .read_exact(&mut word)
        .map_err(|_| bad("missing edge count"))?;
    let m = u64::from_le_bytes(word) as usize;
    let mut payload = vec![0u8; m * 8];
    reader
        .read_exact(&mut payload)
        .map_err(|_| bad("truncated edge payload"))?;
    let mut b = GraphBuilder::new(n);
    for pair in payload.chunks_exact(8) {
        let s = u32::from_le_bytes(pair[..4].try_into().expect("4 bytes"));
        let d = u32::from_le_bytes(pair[4..].try_into().expect("4 bytes"));
        b.try_add_edge(Vid::new(s), Vid::new(d))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = crate::cycle(5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0 1\n  # another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes(), None).unwrap_err();
        match err {
            GraphError::ParseEdge { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn explicit_vertex_count_allows_isolated_tail() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn out_of_bounds_rejected_with_explicit_count() {
        let err = read_edge_list("0 9\n".as_bytes(), Some(5)).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { vid: 9, .. }));
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = crate::RmatConfig::graph500(7, 4).generate();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 16 + g.num_edges() * 8);
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn binary_roundtrip_with_isolated_tail() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(Vid::new(0), Vid::new(1));
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 10, "isolated vertices preserved");
        assert_eq!(g2.num_edges(), 1);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGIC________"[..]).unwrap_err();
        assert!(matches!(err, GraphError::ParseEdge { .. }));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = crate::path(5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::ParseEdge { .. }));
    }

    #[test]
    fn binary_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 0);
    }

    // ---- SNAP loader + CSR cache ----

    use proptest::prelude::*;

    /// Structural equality: same vertex count and identical adjacency in
    /// both directions (the engines read both CSRs).
    fn assert_graphs_identical(a: &Graph, b: &Graph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out({v})");
            assert_eq!(a.in_neighbors(v), b.in_neighbors(v), "in({v})");
        }
    }

    #[test]
    fn snap_skips_comments_and_blanks() {
        let text = "# SNAP header\n# Nodes: 3 Edges: 2\n\n0 1\n\n  # inline\n1 2\n";
        let g = read_snap(text.as_bytes(), SnapOptions::raw()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn snap_default_cleanup_dedups_drops_loops_and_symmetrizes() {
        // duplicate 0->1, self-loop 2->2; cleaned: {0<->1, 1<->2}
        let text = "0 1\n0 1\n1 2\n2 2\n";
        let g = read_snap(text.as_bytes(), SnapOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(Vid::new(1)), &[Vid::new(0), Vid::new(2)]);
    }

    #[test]
    fn snap_raw_keeps_duplicates_and_loops() {
        let text = "0 1\n0 1\n2 2\n";
        let g = read_snap(text.as_bytes(), SnapOptions::raw()).unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn snap_malformed_line_is_a_typed_error() {
        let text = "0 1\n7 banana\n";
        match read_snap(text.as_bytes(), SnapOptions::default()).unwrap_err() {
            GraphError::ParseEdge { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "7 banana");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn snap_out_of_bounds_is_a_typed_error() {
        let opts = SnapOptions {
            num_vertices: Some(4),
            ..SnapOptions::default()
        };
        let err = read_snap("0 9\n".as_bytes(), opts).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { vid: 9, .. }));
    }

    #[test]
    fn csr_cache_roundtrip_is_bit_identical() {
        let text = "# karate-ish\n0 1\n0 2\n1 2\n3 0\n2 2\n0 1\n";
        let opts = SnapOptions::default();
        let g = read_snap(text.as_bytes(), opts).unwrap();
        let fp = fnv1a64(text.as_bytes());
        let mut buf = Vec::new();
        write_csr_cache(&g, fp, opts, &mut buf).unwrap();
        let g2 = read_csr_cache(&buf[..], fp, opts).unwrap();
        assert_graphs_identical(&g, &g2);
    }

    #[test]
    fn csr_cache_rejects_stale_fingerprint_and_options() {
        let text = "0 1\n1 2\n";
        let opts = SnapOptions::default();
        let g = read_snap(text.as_bytes(), opts).unwrap();
        let fp = fnv1a64(text.as_bytes());
        let mut buf = Vec::new();
        write_csr_cache(&g, fp, opts, &mut buf).unwrap();
        assert!(read_csr_cache(&buf[..], fp ^ 1, opts).is_err());
        assert!(read_csr_cache(&buf[..], fp, SnapOptions::raw()).is_err());
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 2);
        assert!(read_csr_cache(&truncated[..], fp, opts).is_err());
    }

    #[test]
    fn load_snap_cached_writes_then_reuses_the_cache() {
        let dir = std::env::temp_dir().join(format!("symple-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "# c\n0 1\n1 2\n2 0\n").unwrap();
        let opts = SnapOptions::default();
        let fresh = load_snap(&path, opts).unwrap();
        let first = load_snap_cached(&path, opts).unwrap();
        assert!(snap_cache_path(&path).exists(), "cache file written");
        let second = load_snap_cached(&path, opts).unwrap();
        assert_graphs_identical(&fresh, &first);
        assert_graphs_identical(&fresh, &second);
        // editing the source invalidates the cache
        std::fs::write(&path, "0 1\n").unwrap();
        let edited = load_snap_cached(&path, opts).unwrap();
        assert_eq!(edited.num_edges(), 2); // symmetrized single edge
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Renders random (possibly messy) edge lists with comments and blank
    /// lines interleaved.
    fn arb_snap_text() -> impl Strategy<Value = String> {
        proptest::collection::vec((0u32..50, 0u32..50), 0..120).prop_map(|edges| {
            let mut s = String::from("# generated\n");
            for (i, (a, b)) in edges.iter().enumerate() {
                if i % 7 == 3 {
                    s.push('\n');
                }
                if i % 11 == 5 {
                    s.push_str("# comment\n");
                }
                s.push_str(&format!("{a} {b}\n"));
            }
            s
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn cache_roundtripped_csr_matches_fresh_parse(
            text in arb_snap_text(),
            symmetrize in any::<bool>(),
            dedup in any::<bool>(),
            drop_self_loops in any::<bool>(),
        ) {
            let opts = SnapOptions { num_vertices: Some(50), symmetrize, dedup, drop_self_loops };
            let fresh = read_snap(text.as_bytes(), opts).unwrap();
            let fp = fnv1a64(text.as_bytes());
            let mut buf = Vec::new();
            write_csr_cache(&fresh, fp, opts, &mut buf).unwrap();
            let cached = read_csr_cache(&buf[..], fp, opts).unwrap();
            assert_graphs_identical(&fresh, &cached);
        }
    }
}
