//! Compressed sparse row adjacency storage.

use crate::Vid;
use std::fmt;

/// Compressed-sparse-row adjacency: for each source vertex a contiguous,
/// sorted slice of neighbor ids.
///
/// `Csr` is direction-agnostic; [`crate::Graph`] holds one `Csr` for
/// out-edges and one for in-edges. Neighbor slices are sorted by vertex id,
/// which the distributed engine relies on to split a vertex's neighbors into
/// per-partition runs with binary search.
///
/// # Example
///
/// ```
/// use symple_graph::{Csr, Vid};
/// let csr = Csr::from_edges(3, &[(Vid::new(0), Vid::new(1)), (Vid::new(0), Vid::new(2))]);
/// assert_eq!(csr.neighbors(Vid::new(0)), &[Vid::new(1), Vid::new(2)]);
/// assert_eq!(csr.degree(Vid::new(1)), 0);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<usize>,
    targets: Vec<Vid>,
}

impl Csr {
    /// Builds a CSR from `(src, dst)` pairs. Edges may arrive in any order;
    /// they are counting-sorted by source and each neighbor list is sorted.
    /// Duplicate edges are preserved (deduplication is the builder's job).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(Vid, Vid)]) -> Self {
        let mut counts = vec![0usize; num_vertices + 1];
        for &(s, d) in edges {
            assert!(
                s.index() < num_vertices && d.index() < num_vertices,
                "edge ({s}, {d}) out of bounds for {num_vertices} vertices"
            );
            counts[s.index() + 1] += 1;
        }
        for i in 0..num_vertices {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut targets = vec![Vid::default(); edges.len()];
        let mut cursor = counts;
        for &(s, d) in edges {
            targets[cursor[s.index()]] = d;
            cursor[s.index()] += 1;
        }
        for v in 0..num_vertices {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn neighbors(&self, v: Vid) -> &[Vid] {
        &self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: Vid) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Iterates `(src, dst)` over all edges in source order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (Vid, Vid)> + '_ {
        (0..self.num_vertices()).flat_map(move |s| {
            let src = Vid::from_index(s);
            self.neighbors(src).iter().map(move |&d| (src, d))
        })
    }

    /// The neighbors of `v` whose ids fall in `[lo, hi)`, found by binary
    /// search. This is how a machine extracts the per-partition run of a
    /// vertex's neighbor list.
    pub fn neighbors_in_range(&self, v: Vid, lo: Vid, hi: Vid) -> &[Vid] {
        let nbrs = self.neighbors(v);
        let start = nbrs.partition_point(|&u| u < lo);
        let end = nbrs.partition_point(|&u| u < hi);
        &nbrs[start..end]
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csr(vertices={}, edges={})",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Vid {
        Vid::new(i)
    }

    #[test]
    fn build_and_query() {
        let csr = Csr::from_edges(4, &[(v(2), v(0)), (v(0), v(3)), (v(0), v(1))]);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.neighbors(v(0)), &[v(1), v(3)]);
        assert_eq!(csr.neighbors(v(2)), &[v(0)]);
        assert_eq!(csr.neighbors(v(1)), &[]);
        assert_eq!(csr.degree(v(0)), 2);
    }

    #[test]
    fn neighbors_sorted_even_with_duplicates() {
        let csr = Csr::from_edges(3, &[(v(0), v(2)), (v(0), v(1)), (v(0), v(2))]);
        assert_eq!(csr.neighbors(v(0)), &[v(1), v(2), v(2)]);
    }

    #[test]
    fn iter_edges_covers_all() {
        let edges = [(v(1), v(0)), (v(0), v(1)), (v(2), v(1))];
        let csr = Csr::from_edges(3, &edges);
        let mut out: Vec<_> = csr.iter_edges().collect();
        out.sort();
        let mut expect = edges.to_vec();
        expect.sort();
        assert_eq!(out, expect);
    }

    #[test]
    fn range_query() {
        let csr = Csr::from_edges(
            10,
            &[(v(0), v(1)), (v(0), v(4)), (v(0), v(5)), (v(0), v(9))],
        );
        assert_eq!(csr.neighbors_in_range(v(0), v(4), v(9)), &[v(4), v(5)]);
        assert_eq!(csr.neighbors_in_range(v(0), v(0), v(10)).len(), 4);
        assert_eq!(csr.neighbors_in_range(v(0), v(6), v(9)), &[]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        Csr::from_edges(2, &[(v(0), v(2))]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }
}
