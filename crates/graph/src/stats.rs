//! Graph statistics, including the paper's Table 1 columns.
//!
//! Table 1 reports `|V|`, `|E|`, and `|V'|/|V|` — the fraction of
//! *high-degree* vertices, i.e. those whose degree reaches the
//! differentiated-propagation threshold (32; §6 "we search powers of two
//! with the best performance and use 32").

use crate::{Graph, Vid};
use std::fmt;

/// Summary of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of vertices with degree zero.
    pub zeros: usize,
}

impl DegreeStats {
    fn from_degrees(degrees: impl Iterator<Item = usize>, n: usize) -> Self {
        let mut min = usize::MAX;
        let mut max = 0;
        let mut sum = 0usize;
        let mut zeros = 0;
        let mut count = 0usize;
        for d in degrees {
            min = min.min(d);
            max = max.max(d);
            sum += d;
            if d == 0 {
                zeros += 1;
            }
            count += 1;
        }
        debug_assert_eq!(count, n);
        if n == 0 {
            min = 0;
        }
        DegreeStats {
            min,
            max,
            mean: if n == 0 { 0.0 } else { sum as f64 / n as f64 },
            zeros,
        }
    }
}

/// Whole-graph statistics (Table 1 row plus degree summaries).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// In-degree summary.
    pub in_degrees: DegreeStats,
    /// Out-degree summary.
    pub out_degrees: DegreeStats,
    /// Number of high-degree vertices (in-degree ≥ threshold).
    pub high_degree_vertices: usize,
    /// The threshold used for `high_degree_vertices`.
    pub degree_threshold: usize,
}

impl GraphStats {
    /// Computes statistics with the paper's default threshold of 32.
    pub fn of(graph: &Graph) -> Self {
        Self::with_threshold(graph, 32)
    }

    /// Computes statistics with an explicit high-degree threshold.
    pub fn with_threshold(graph: &Graph, degree_threshold: usize) -> Self {
        let n = graph.num_vertices();
        let high = graph
            .vertices()
            .filter(|&v| graph.in_degree(v) >= degree_threshold)
            .count();
        GraphStats {
            num_vertices: n,
            num_edges: graph.num_edges(),
            in_degrees: DegreeStats::from_degrees(graph.vertices().map(|v| graph.in_degree(v)), n),
            out_degrees: DegreeStats::from_degrees(
                graph.vertices().map(|v| graph.out_degree(v)),
                n,
            ),
            high_degree_vertices: high,
            degree_threshold,
        }
    }

    /// Table 1's `|V'|/|V|`: fraction of high-degree vertices.
    pub fn high_degree_fraction(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.high_degree_vertices as f64 / self.num_vertices as f64
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |V'|/|V|={:.2} (threshold {})",
            self.num_vertices,
            self.num_edges,
            self.high_degree_fraction(),
            self.degree_threshold
        )
    }
}

/// Computes the in-degree histogram (index = degree, clamped at `cap`).
pub fn in_degree_histogram(graph: &Graph, cap: usize) -> Vec<usize> {
    let mut hist = vec![0usize; cap + 1];
    for v in graph.vertices() {
        hist[graph.in_degree(v).min(cap)] += 1;
    }
    hist
}

/// Lists vertices whose in-degree is at least `threshold`, ascending by id.
/// This is the `V'` set that differentiated dependency propagation applies
/// to (§5.2).
pub fn high_degree_vertices(graph: &Graph, threshold: usize) -> Vec<Vid> {
    graph
        .vertices()
        .filter(|&v| graph.in_degree(v) >= threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star;

    #[test]
    fn star_stats() {
        let g = star(33); // hub in-degree 32, leaves in-degree 1
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 33);
        assert_eq!(s.high_degree_vertices, 1);
        assert!((s.high_degree_fraction() - 1.0 / 33.0).abs() < 1e-12);
        assert_eq!(s.in_degrees.max, 32);
        assert_eq!(s.in_degrees.min, 1);
        assert_eq!(s.in_degrees.zeros, 0);
    }

    #[test]
    fn threshold_is_respected() {
        let g = star(33);
        let s = GraphStats::with_threshold(&g, 33);
        assert_eq!(s.high_degree_vertices, 0);
        let s = GraphStats::with_threshold(&g, 1);
        assert_eq!(s.high_degree_vertices, 33);
    }

    #[test]
    fn histogram_sums_to_vertices() {
        let g = star(10);
        let h = in_degree_histogram(&g, 16);
        assert_eq!(h.iter().sum::<usize>(), 10);
        assert_eq!(h[9], 1); // hub
        assert_eq!(h[1], 9); // leaves
    }

    #[test]
    fn histogram_cap_clamps() {
        let g = star(10);
        let h = in_degree_histogram(&g, 4);
        assert_eq!(h[4], 1); // hub clamped into the cap bucket
    }

    #[test]
    fn high_degree_list() {
        let g = star(40);
        assert_eq!(high_degree_vertices(&g, 32), vec![Vid::new(0)]);
        assert_eq!(high_degree_vertices(&g, 100), Vec::<Vid>::new());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::new(0).build();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.high_degree_fraction(), 0.0);
        assert_eq!(s.in_degrees.mean, 0.0);
    }

    #[test]
    fn display_mentions_fields() {
        let g = star(5);
        let s = GraphStats::of(&g).to_string();
        assert!(s.contains("|V|=5"));
    }
}
