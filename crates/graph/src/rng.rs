//! Minimal deterministic pseudo-random number generator.
//!
//! The container this reproduction builds in has no network access, so the
//! `rand` crate is unavailable; the generators only ever needed a seedable
//! uniform source, which this module provides. The core is SplitMix64
//! (Steele, Lea & Flood 2014) — a tiny, well-mixed 64-bit generator whose
//! streams are fully determined by the seed, which is exactly the
//! determinism guarantee the test suites and the virtual-time engine rely
//! on (DESIGN.md §6). Not cryptographic; never used for security.

/// A seedable deterministic 64-bit PRNG (SplitMix64).
///
/// # Example
///
/// ```
/// use symple_graph::Rng64;
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Pre-advance once so seed 0 doesn't start at the fixed point.
        let mut rng = Rng64 { state: seed };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)` via rejection sampling (no modulo
    /// bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        let bound = bound as u64;
        // Lemire-style rejection: draw until the value falls inside the
        // largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % bound) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = Rng64::seed_from_u64(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn index_respects_bound() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let i = r.gen_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        Rng64::seed_from_u64(0).gen_index(0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng64::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
