//! Incremental graph construction with the preprocessing options the
//! paper's methodology requires.
//!
//! §7.1: "To run undirected algorithms using directed graphs, we consider
//! every directed edge as its undirected counterpart. To run directed
//! algorithms using undirected graphs, we convert the undirected datasets to
//! directed graphs by adding reverse edges." Both correspond to
//! [`GraphBuilder::symmetrize`].

use crate::{Graph, GraphError, Result, Vid};

/// Accumulates edges and produces a [`Graph`] after optional cleanup.
///
/// # Example
///
/// ```
/// use symple_graph::{GraphBuilder, Vid};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(Vid::new(0), Vid::new(1));
/// b.add_edge(Vid::new(0), Vid::new(1)); // duplicate
/// b.add_edge(Vid::new(1), Vid::new(1)); // self-loop
/// let g = b.dedup(true).drop_self_loops(true).symmetrize(true).build();
/// assert_eq!(g.num_edges(), 2); // 0->1 and 1->0
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(Vid, Vid)>,
    dedup: bool,
    drop_self_loops: bool,
    symmetrize: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            dedup: false,
            drop_self_loops: false,
            symmetrize: false,
        }
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of bounds; use
    /// [`GraphBuilder::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, src: Vid, dst: Vid) -> &mut Self {
        self.try_add_edge(src, dst)
            .expect("edge endpoint out of bounds");
        self
    }

    /// Adds a directed edge, reporting out-of-bounds endpoints as an error.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if an endpoint is
    /// `>= num_vertices`.
    pub fn try_add_edge(&mut self, src: Vid, dst: Vid) -> Result<&mut Self> {
        for v in [src, dst] {
            if v.index() >= self.num_vertices {
                return Err(GraphError::VertexOutOfBounds {
                    vid: v.raw(),
                    num_vertices: self.num_vertices as u32,
                });
            }
        }
        self.edges.push((src, dst));
        Ok(self)
    }

    /// Adds many edges at once.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of bounds.
    pub fn extend_edges<I: IntoIterator<Item = (Vid, Vid)>>(&mut self, iter: I) -> &mut Self {
        for (s, d) in iter {
            self.add_edge(s, d);
        }
        self
    }

    /// If `true`, duplicate edges are removed at build time.
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// If `true`, self-loops are removed at build time.
    pub fn drop_self_loops(&mut self, yes: bool) -> &mut Self {
        self.drop_self_loops = yes;
        self
    }

    /// If `true`, every edge `(u, v)` also produces `(v, u)` at build time
    /// (the paper's directed↔undirected conversion).
    pub fn symmetrize(&mut self, yes: bool) -> &mut Self {
        self.symmetrize = yes;
        self
    }

    /// Number of edges currently buffered (before build-time cleanup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    pub fn build(&self) -> Graph {
        let mut edges = self.edges.clone();
        if self.symmetrize {
            let rev: Vec<(Vid, Vid)> = edges.iter().map(|&(s, d)| (d, s)).collect();
            edges.extend(rev);
        }
        if self.drop_self_loops {
            edges.retain(|&(s, d)| s != d);
        }
        if self.dedup {
            edges.sort_unstable();
            edges.dedup();
        }
        Graph::from_edges(self.num_vertices, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Vid {
        Vid::new(i)
    }

    #[test]
    fn plain_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1)).add_edge(v(1), v(2));
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(b.pending_edges(), 2);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(v(0), v(1)).add_edge(v(0), v(1));
        assert_eq!(b.dedup(true).build().num_edges(), 1);
        assert_eq!(b.dedup(false).build().num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(v(1), v(1)).add_edge(v(0), v(1));
        assert_eq!(b.drop_self_loops(true).build().num_edges(), 1);
    }

    #[test]
    fn symmetrize_adds_reverse() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1));
        let g = b.symmetrize(true).build();
        assert_eq!(g.out_neighbors(v(1)), &[v(0)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetrize_dedup_idempotent_on_bidirectional_input() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(v(0), v(1)).add_edge(v(1), v(0));
        let g = b.symmetrize(true).dedup(true).build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn try_add_edge_rejects_out_of_bounds() {
        let mut b = GraphBuilder::new(2);
        let err = b.try_add_edge(v(0), v(5)).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { vid: 5, .. }));
        assert_eq!(b.pending_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_panics_out_of_bounds() {
        GraphBuilder::new(1).add_edge(v(0), v(1));
    }
}
