//! Property-based cross-checks among the *single-threaded* reference
//! implementations: the distributed engines are validated against these
//! references elsewhere, so the references themselves must be mutually
//! consistent on arbitrary graphs.

use proptest::prelude::*;
use symple_algos::kcore::kcore_reference;
use symple_algos::matula_beck::{coreness, kcore_from_coreness};
use symple_algos::{bfs_reference, mis_greedy_reference, sampling_reference, validate_sampling};
use symple_graph::{Graph, GraphBuilder, Vid};

fn arb_sym_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (s, d) in edges {
                b.add_edge(Vid::new(s), Vid::new(d));
            }
            b.symmetrize(true).dedup(true).drop_self_loops(true).build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matula–Beck coreness and iterative peeling define the same k-core
    /// for every k.
    #[test]
    fn coreness_equals_peeling(g in arb_sym_graph(120, 400)) {
        let (core, _) = coreness(&g);
        let max_core = core.iter().copied().max().unwrap_or(0);
        for k in 1..=max_core.min(8) {
            let fast = kcore_from_coreness(&core, k);
            let (slow, _) = kcore_reference(&g, k);
            prop_assert_eq!(fast, slow, "k={}", k);
        }
        // beyond the max coreness everything is peeled away
        let (empty, _) = kcore_reference(&g, max_core + 1);
        prop_assert_eq!(empty.count_ones(), 0);
    }

    /// Coreness is bounded by degree and by the max-coreness neighbour
    /// property (each vertex's coreness ≤ 1 + #neighbours with coreness
    /// ≥ its own is implied by k-core membership; we check the degree
    /// bound and k-core witness directly).
    #[test]
    fn coreness_is_sound(g in arb_sym_graph(100, 300)) {
        let (core, _) = coreness(&g);
        for v in g.vertices() {
            prop_assert!(core[v.index()] as usize <= g.in_degree(v));
            let k = core[v.index()];
            if k > 0 {
                // v sits in the k-core: it has >= k neighbours in that core
                let in_core = kcore_from_coreness(&core, k);
                let witnesses = g
                    .in_neighbors(v)
                    .iter()
                    .filter(|u| in_core.get_vid(**u))
                    .count();
                prop_assert!(witnesses as u32 >= k, "{} has {} < {}", v, witnesses, k);
            }
        }
    }

    /// Greedy MIS output is independent and maximal for any seed.
    #[test]
    fn greedy_mis_is_valid(g in arb_sym_graph(100, 300), seed in 0u64..100) {
        let mis = mis_greedy_reference(&g, seed);
        for (s, d) in g.edges() {
            if s != d {
                prop_assert!(!(mis.get_vid(s) && mis.get_vid(d)));
            }
        }
        for v in g.vertices() {
            if !mis.get_vid(v) {
                let covered = g.in_neighbors(v).iter().any(|u| mis.get_vid(*u));
                prop_assert!(covered, "{} uncovered", v);
            }
        }
    }

    /// BFS reference: triangle inequality over edges and parent
    /// consistency.
    #[test]
    fn bfs_reference_is_consistent(g in arb_sym_graph(100, 300), root_raw in 0u32..100) {
        let root = Vid::new(root_raw % g.num_vertices() as u32);
        let (out, edges) = bfs_reference(&g, root);
        prop_assert_eq!(out.depth[root.index()], 0);
        for (s, d) in g.edges() {
            let (ds, dd) = (out.depth[s.index()], out.depth[d.index()]);
            if ds != u32::MAX {
                prop_assert!(dd != u32::MAX && dd <= ds + 1, "edge {}->{}", s, d);
            }
        }
        // every edge out of a reached vertex is examined exactly once
        let reached_out: u64 = g
            .vertices()
            .filter(|v| out.depth[v.index()] != u32::MAX)
            .map(|v| g.out_degree(v) as u64)
            .sum();
        prop_assert_eq!(edges, reached_out);
    }

    /// The sampling reference always selects valid neighbours and scans
    /// no more edges than exist.
    #[test]
    fn sampling_reference_is_valid(g in arb_sym_graph(100, 300), seed in 0u64..100) {
        let (out, edges) = sampling_reference(&g, seed);
        validate_sampling(&g, &out);
        prop_assert!(edges <= g.num_edges() as u64);
    }
}
