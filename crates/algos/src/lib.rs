//! The paper's five loop-carried-dependency algorithms (§2.1, Figure 3) on
//! the SympleGraph engine, plus single-threaded reference implementations
//! and validators.
//!
//! Every algorithm comes in the same shape:
//!
//! * a **distributed** entry point taking a graph and an
//!   [`symple_core::EngineConfig`], running identically under the
//!   SympleGraph, Gemini, and D-Galois-style policies (only the engine's
//!   dependency behaviour differs — which is the paper's entire point);
//! * the **pull program** type(s) implementing the signal UDF with its
//!   loop-carried `break`;
//! * a **single-threaded reference** used for validation and for the COST
//!   metric (§7.4);
//! * a **validator** checking the distributed output against the
//!   algorithm's invariants (and, where the algorithm is deterministic,
//!   against the reference output).
//!
//! Algorithms that treat the graph as undirected (MIS, K-core, K-means)
//! expect a symmetrized graph — the same conversion the paper applies to
//! directed datasets (§7.1); build one with
//! [`symple_graph::GraphBuilder::symmetrize`] or
//! [`symple_graph::RmatConfig::cleaned`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod common;
pub mod kcore;
pub mod kmeans;
pub mod labelprop;
pub mod matula_beck;
pub mod mis;
pub mod pagerank;
pub mod sampling;
pub mod sssp;

pub use bfs::{bfs, bfs_reference, bfs_with_direction, validate_bfs, BfsOutput, Direction};
pub use kcore::{kcore, kcore_reference, validate_kcore, KcoreOutput};
pub use kmeans::{kmeans, validate_kmeans, KmeansOutput};
pub use labelprop::{cc, cc_reference, validate_cc, CcOutput};
pub use matula_beck::coreness;
pub use mis::{mis, mis_greedy_reference, validate_mis, MisOutput};
pub use pagerank::{pagerank, pagerank_reference, validate_pagerank, PagerankOutput};
pub use sampling::{sampling, sampling_reference, validate_sampling, SamplingOutput};
pub use sssp::{sssp, sssp_reference, validate_sssp, SsspOutput};
