//! Deterministic per-vertex randomness.
//!
//! Every machine must agree on random per-vertex values (MIS priorities,
//! sampling weights and thresholds, K-means centers) *without
//! communicating*: we derive them from a splittable hash of
//! `(seed, stream, vertex)`. This keeps every engine policy — and the
//! single-threaded references — bit-identical in their random choices, so
//! tests can compare outputs exactly where the algorithm is deterministic.

use symple_graph::{Graph, Vid};

/// SplitMix64 finalizer — a high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic hash of `(seed, stream, x)`.
pub fn hash3(seed: u64, stream: u64, x: u64) -> u64 {
    splitmix64(splitmix64(seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f)) ^ x)
}

/// A uniform value in `[0, 1)` derived from `(seed, stream, x)`.
pub fn uniform01(seed: u64, stream: u64, x: u64) -> f64 {
    // 53 random mantissa bits
    (hash3(seed, stream, x) >> 11) as f64 / (1u64 << 53) as f64
}

/// MIS priority ("color") of a vertex: a random total order, ties broken
/// by id so priorities are distinct (§2.1: "each vertex is assigned
/// distinct values (colors)").
pub fn vertex_color(seed: u64, v: Vid) -> u64 {
    (hash3(seed, 0xC01, u64::from(v.raw())) << 32) | u64::from(v.raw())
}

/// Sampling weight of a vertex, in `(0, 1]`.
pub fn vertex_weight(seed: u64, v: Vid) -> f32 {
    let u = uniform01(seed, 0x3EE, u64::from(v.raw()));
    (1.0 - u) as f32
}

/// Per-vertex uniform threshold for weighted sampling, in `[0, total)`.
pub fn sampling_threshold(seed: u64, v: Vid, total: f32) -> f32 {
    (uniform01(seed, 0x7A6, u64::from(v.raw())) as f32) * total
}

/// Maximum deterministic edge weight produced by [`edge_weight`].
pub const MAX_EDGE_WEIGHT: u64 = 8;

/// Deterministic integer weight of the directed edge `(u, v)`, in
/// `1..=MAX_EDGE_WEIGHT`. Every machine derives the same weight without
/// communicating, so weighted algorithms (delta-stepping SSSP) stay
/// bit-identical across policies, thread counts, and backends.
pub fn edge_weight(seed: u64, u: Vid, v: Vid) -> u64 {
    let key = (u64::from(u.raw()) << 32) | u64::from(v.raw());
    1 + hash3(seed, 0xED6E, key) % MAX_EDGE_WEIGHT
}

/// Total in-neighbour weight of every vertex (the prefix-sum denominator
/// in Figure 3(d)).
pub fn total_in_weights(graph: &Graph, seed: u64) -> Vec<f32> {
    graph
        .vertices()
        .map(|v| {
            graph
                .in_neighbors(v)
                .iter()
                .map(|&u| vertex_weight(seed, u))
                .sum()
        })
        .collect()
}

/// Selects `count` distinct vertices deterministically (K-means centers):
/// the `count` vertices with the smallest `hash3(seed, stream, id)`.
pub fn select_distinct(seed: u64, stream: u64, n: usize, count: usize) -> Vec<Vid> {
    assert!(count <= n, "cannot select more vertices than exist");
    let mut keyed: Vec<(u64, u32)> = (0..n as u32)
        .map(|i| (hash3(seed, stream, u64::from(i)), i))
        .collect();
    keyed.select_nth_unstable(count.max(1) - 1);
    let mut out: Vec<Vid> = keyed[..count].iter().map(|&(_, i)| Vid::new(i)).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 3, 3));
    }

    #[test]
    fn uniform01_in_range() {
        for x in 0..1000 {
            let u = uniform01(7, 1, x);
            assert!((0.0..1.0).contains(&u));
        }
        // roughly uniform: mean near 0.5
        let mean: f64 = (0..10_000).map(|x| uniform01(7, 1, x)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn colors_are_distinct() {
        let mut colors: Vec<u64> = (0..5000u32).map(|i| vertex_color(3, Vid::new(i))).collect();
        colors.sort_unstable();
        colors.dedup();
        assert_eq!(colors.len(), 5000);
    }

    #[test]
    fn weights_are_positive() {
        for i in 0..1000u32 {
            let w = vertex_weight(11, Vid::new(i));
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn total_in_weights_match_neighbor_sum() {
        let g = symple_graph::star(10);
        let tw = total_in_weights(&g, 5);
        let hub_expect: f32 = (1..10u32).map(|i| vertex_weight(5, Vid::new(i))).sum();
        assert!((tw[0] - hub_expect).abs() < 1e-6);
    }

    #[test]
    fn select_distinct_properties() {
        let picks = select_distinct(9, 1, 100, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "distinct");
        assert_eq!(picks, select_distinct(9, 1, 100, 10), "deterministic");
        assert_ne!(picks, select_distinct(10, 1, 100, 10));
        // full selection returns everything
        assert_eq!(select_distinct(9, 1, 5, 5).len(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot select more")]
    fn select_too_many_panics() {
        select_distinct(1, 1, 3, 4);
    }
}
