//! Maximal independent set (paper §2.1, Figure 3a).
//!
//! Luby-style coloring: each vertex gets a distinct random priority
//! ("color"). In each round, an active vertex scans its active neighbours
//! and **breaks** as soon as it sees a smaller color — the loop-carried
//! dependency. Vertices that see no smaller active color join the MIS;
//! MIS vertices and their neighbours then deactivate.
//!
//! With fixed priorities this converges to the *lexicographically-first*
//! MIS of the priority order, so the distributed result under every policy
//! must equal the sequential greedy reference exactly.
//!
//! Expects a symmetrized graph (see crate docs).

use crate::common::vertex_color;
use symple_core::{
    run_spmd, BitDep, EngineConfig, PullProgram, PushProgram, RunStats, SignalOutcome, Worker,
};
use symple_graph::{Bitmap, Graph, Vid};

/// Result of an MIS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisOutput {
    /// Membership bitmap.
    pub in_mis: Bitmap,
    /// Number of rounds until convergence.
    pub rounds: u32,
}

impl MisOutput {
    /// Number of MIS members.
    pub fn len(&self) -> usize {
        self.in_mis.count_ones()
    }

    /// Returns `true` if the set is empty (only for an empty graph).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Signal UDF (Figure 3a): break at the first active neighbour with a
/// smaller color; emit a "loser" notification for the destination.
pub struct MisPull<'a> {
    /// Still-undecided vertices.
    pub active: &'a Bitmap,
    /// Random distinct priorities.
    pub colors: &'a [u64],
}

impl PullProgram for MisPull<'_> {
    type Update = ();
    type Dep = BitDep;

    fn dense_active(&self, v: Vid) -> bool {
        self.active.get_vid(v)
    }

    fn signal(
        &self,
        v: Vid,
        srcs: &[Vid],
        dep: &mut BitDep,
        slot: usize,
        _carried: bool,
        emit: &mut dyn FnMut(()),
    ) -> SignalOutcome {
        let my_color = self.colors[v.index()];
        for (i, &u) in srcs.iter().enumerate() {
            if self.active.get_vid(u) && self.colors[u.index()] < my_color {
                emit(());
                dep.mark(slot);
                return SignalOutcome::broke_after(i as u64 + 1);
            }
        }
        SignalOutcome::scanned(srcs.len() as u64)
    }
}

/// Deactivation push: winners knock out their still-active neighbours.
/// No loop-carried dependency (every neighbour must be deactivated).
pub struct MisDeactivate<'a> {
    /// Active set before deactivation.
    pub active: &'a Bitmap,
}

impl PushProgram for MisDeactivate<'_> {
    type Update = ();

    fn signal(&self, _u: Vid, dsts: &[Vid], emit: &mut dyn FnMut(Vid, ())) -> u64 {
        for &d in dsts {
            if self.active.get_vid(d) {
                emit(d, ());
            }
        }
        dsts.len() as u64
    }
}

fn mis_body(w: &mut Worker, seed: u64) -> (Bitmap, u32) {
    let graph = w.graph();
    let n = graph.num_vertices();
    let colors: Vec<u64> = (0..n as u32)
        .map(|i| vertex_color(seed, Vid::new(i)))
        .collect();
    let mut active = Bitmap::new(n);
    active.set_all();
    let mut in_mis = Bitmap::new(n);
    let mut dep = BitDep::new(w.dep_slots_needed());
    let mut rounds = 0u32;

    let mut remaining = n as u64;
    while remaining > 0 {
        rounds += 1;
        // Phase 1 (pull, loop-carried): find this round's losers.
        let mut loser_bits = Bitmap::new(n);
        {
            let prog = MisPull {
                active: &active,
                colors: &colors,
            };
            let mut apply = |v: Vid, (): ()| -> bool { !loser_bits.set_vid(v) };
            w.pull(&prog, &mut dep, &mut apply);
        }
        // Winners: active local masters that received no loser update.
        let mut winners: Vec<Vid> = Vec::new();
        for v in w.masters() {
            if active.get_vid(v) && !loser_bits.get_vid(v) {
                in_mis.set_vid(v);
                winners.push(v);
            }
        }
        // Phase 2 (push): winners deactivate their neighbours.
        let mut knocked = Bitmap::new(n);
        {
            let prog = MisDeactivate { active: &active };
            let mut apply = |v: Vid, (): ()| -> bool {
                if active.get_vid(v) && !in_mis.get_vid(v) {
                    !knocked.set_vid(v)
                } else {
                    false
                }
            };
            w.push(&prog, &winners, &mut apply);
        }
        for &v in &winners {
            active.clear(v.index());
        }
        for v in knocked.iter_ones() {
            active.clear(v);
        }
        w.sync_bitmap(&mut active);
        let local_active = w.masters().filter(|&v| active.get_vid(v)).count() as u64;
        remaining = w.allreduce(local_active, |a, b| a + b);
    }
    w.sync_bitmap(&mut in_mis);
    (in_mis, rounds)
}

/// Runs distributed MIS with priorities derived from `seed`.
///
/// # Example
///
/// ```
/// use symple_algos::{mis, validate_mis};
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::cycle;
///
/// let g = cycle(30);
/// let (out, _stats) = mis(&g, &EngineConfig::new(2, Policy::symple()), 7);
/// validate_mis(&g, &out, 7);
/// ```
pub fn mis(graph: &Graph, cfg: &EngineConfig, seed: u64) -> (MisOutput, RunStats) {
    let mut res = run_spmd(graph, cfg, |w| mis_body(w, seed));
    let (in_mis, rounds) = res.outputs.swap_remove(0);
    (MisOutput { in_mis, rounds }, res.stats)
}

/// Sequential greedy MIS in ascending priority order — the fixed point of
/// Luby's algorithm with fixed priorities, hence the exact expected output
/// of the distributed runs.
pub fn mis_greedy_reference(graph: &Graph, seed: u64) -> Bitmap {
    let n = graph.num_vertices();
    let mut order: Vec<Vid> = graph.vertices().collect();
    order.sort_by_key(|&v| vertex_color(seed, v));
    let mut in_mis = Bitmap::new(n);
    let mut blocked = Bitmap::new(n);
    for v in order {
        if !blocked.get_vid(v) {
            in_mis.set_vid(v);
            for &u in graph.out_neighbors(v) {
                blocked.set_vid(u);
            }
            for &u in graph.in_neighbors(v) {
                blocked.set_vid(u);
            }
        }
    }
    in_mis
}

/// Validates independence, maximality, and exact agreement with the
/// greedy reference.
///
/// # Panics
///
/// Panics describing the first violated invariant.
pub fn validate_mis(graph: &Graph, out: &MisOutput, seed: u64) {
    // independence
    for (s, d) in graph.edges() {
        if s == d {
            continue;
        }
        assert!(
            !(out.in_mis.get_vid(s) && out.in_mis.get_vid(d)),
            "adjacent MIS members {s} and {d}"
        );
    }
    // maximality
    for v in graph.vertices() {
        if !out.in_mis.get_vid(v) {
            let has_mis_neighbor = graph
                .in_neighbors(v)
                .iter()
                .chain(graph.out_neighbors(v))
                .any(|&u| out.in_mis.get_vid(u));
            assert!(has_mis_neighbor, "{v} excluded without an MIS neighbour");
        }
    }
    // determinism: equals the lexicographically-first MIS
    let reference = mis_greedy_reference(graph, seed);
    for v in graph.vertices() {
        assert_eq!(
            out.in_mis.get_vid(v),
            reference.get_vid(v),
            "membership of {v} differs from the greedy reference"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{complete, cycle, grid, star, RmatConfig};

    fn check_all_policies(graph: &Graph, machines: usize, seed: u64) {
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::Gemini,
            Policy::Galois,
        ] {
            let cfg = EngineConfig::new(machines, policy);
            let (out, _) = mis(graph, &cfg, seed);
            validate_mis(graph, &out, seed);
        }
    }

    #[test]
    fn cycle_mis() {
        check_all_policies(&cycle(90), 3, 1);
    }

    #[test]
    fn complete_graph_single_winner() {
        let g = complete(20);
        let (out, _) = mis(&g, &EngineConfig::new(2, Policy::symple()), 5);
        assert_eq!(out.len(), 1);
        validate_mis(&g, &out, 5);
    }

    #[test]
    fn star_hub_or_leaves() {
        let g = star(100);
        check_all_policies(&g, 4, 3);
        let (out, _) = mis(&g, &EngineConfig::new(4, Policy::symple()), 3);
        // either the hub alone or all leaves
        assert!(out.len() == 1 || out.len() == 99);
    }

    #[test]
    fn grid_mis_multiple_seeds() {
        let g = grid(8, 9);
        for seed in 0..4 {
            check_all_policies(&g, 3, seed);
        }
    }

    #[test]
    fn rmat_mis() {
        let g = RmatConfig::graph500(8, 8).cleaned(true).generate();
        check_all_policies(&g, 5, 11);
    }

    #[test]
    fn symple_and_gemini_agree_and_symple_skips() {
        let g = RmatConfig::graph500(9, 16).cleaned(true).generate();
        let (out_g, st_g) = mis(&g, &EngineConfig::new(4, Policy::Gemini), 2);
        let (out_s, st_s) = mis(&g, &EngineConfig::new(4, Policy::symple()), 2);
        assert_eq!(out_g.in_mis, out_s.in_mis);
        assert!(st_s.work.edges_traversed() < st_g.work.edges_traversed());
        assert!(st_s.work.skipped_by_dep() > 0);
        assert_eq!(st_g.work.skipped_by_dep(), 0, "gemini never skips via dep");
    }
}
