//! Connected components via min-label propagation.
//!
//! Every vertex starts labelled with its own id and repeatedly adopts the
//! smallest label among its changed in-neighbours; at fixpoint each
//! component carries the id of its smallest vertex. The signal UDF has a
//! genuine loop-carried **break**: the global minimum label is `0`, so
//! the moment a scan sees a neighbour labelled `0` nothing smaller can
//! follow — the vertex emits and stops, and SympleGraph's dependency
//! propagation makes that stop global ([`symple_core::BitDep`]), exactly
//! the BFS-shaped early exit of the paper's Figure 1b but driven by a
//! data value rather than frontier membership.
//!
//! Min-combining makes the computation order-invariant: outputs are
//! bit-identical across policies, thread counts, exchange modes, and
//! backends. Expects a symmetrized graph (see crate docs).

use symple_core::{run_spmd, BitDep, EngineConfig, PullProgram, RunStats, SignalOutcome, Worker};
use symple_graph::{Bitmap, Graph, Vid};

/// Result of a connected-components run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcOutput {
    /// Component label per vertex: the smallest vertex id in its
    /// component.
    pub label: Vec<u32>,
    /// Propagation rounds until fixpoint.
    pub rounds: u32,
}

impl CcOutput {
    /// Number of connected components.
    pub fn components(&self) -> usize {
        self.label
            .iter()
            .enumerate()
            .filter(|&(i, &l)| l == i as u32)
            .count()
    }
}

/// Min-label signal: scan changed in-neighbours for the smallest label;
/// break (and mark the dependency) the moment label `0` — the global
/// minimum — is seen.
pub struct CcPull<'a> {
    /// Label snapshot for this round.
    pub label: &'a [u32],
    /// Vertices whose label changed last round.
    pub changed: &'a Bitmap,
}

impl PullProgram for CcPull<'_> {
    type Update = u32;
    type Dep = BitDep;

    fn dense_active(&self, v: Vid) -> bool {
        // label 0 is the global minimum: such a vertex can never improve.
        self.label[v.index()] > 0
    }

    fn signal(
        &self,
        _v: Vid,
        srcs: &[Vid],
        dep: &mut BitDep,
        slot: usize,
        _carried: bool,
        emit: &mut dyn FnMut(u32),
    ) -> SignalOutcome {
        let mut best = u32::MAX;
        for (i, &u) in srcs.iter().enumerate() {
            if self.changed.get_vid(u) {
                let lu = self.label[u.index()];
                if lu < best {
                    best = lu;
                    if lu == 0 {
                        emit(0);
                        dep.mark(slot);
                        return SignalOutcome::broke_after(i as u64 + 1);
                    }
                }
            }
        }
        if best != u32::MAX {
            emit(best);
        }
        SignalOutcome::scanned(srcs.len() as u64)
    }
}

fn cc_body(w: &mut Worker) -> (Vec<u32>, u32) {
    let graph = w.graph();
    let n = graph.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut changed = Bitmap::new(n);
    changed.set_all(); // round 1: every initial label is news
    let mut dep = BitDep::new(w.dep_slots_needed());
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let mut next_changed = Bitmap::new(n);
        let mut newly: Vec<Vid> = Vec::new();
        {
            let snapshot = label.clone();
            let prog = CcPull {
                label: &snapshot,
                changed: &changed,
            };
            let mut apply = |v: Vid, cand: u32| -> bool {
                if cand < label[v.index()] {
                    label[v.index()] = cand;
                    if !next_changed.set_vid(v) {
                        newly.push(v);
                    }
                    true
                } else {
                    false
                }
            };
            w.pull(&prog, &mut dep, &mut apply);
        }
        changed = next_changed;
        w.sync_bitmap(&mut changed);
        w.sync_changed(&mut label, &newly);
        if w.allreduce(newly.len() as u64, |a, b| a + b) == 0 {
            break;
        }
    }
    (label, rounds)
}

/// Runs distributed connected components by min-label propagation.
///
/// # Example
///
/// ```
/// use symple_algos::cc;
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::cycle;
///
/// let g = cycle(12);
/// let (out, _stats) = cc(&g, &EngineConfig::new(2, Policy::symple()));
/// assert_eq!(out.components(), 1);
/// assert!(out.label.iter().all(|&l| l == 0));
/// ```
pub fn cc(graph: &Graph, cfg: &EngineConfig) -> (CcOutput, RunStats) {
    let mut res = run_spmd(graph, cfg, cc_body);
    let (label, rounds) = res.outputs.swap_remove(0);
    (CcOutput { label, rounds }, res.stats)
}

/// Single-threaded reference: flood-fill in ascending id order over both
/// edge directions (weakly connected components — identical to the
/// engine's result on the symmetrized graphs the kernel expects).
/// Returns the output and edges examined.
pub fn cc_reference(graph: &Graph) -> (CcOutput, u64) {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut edges = 0u64;
    let mut stack = Vec::new();
    for start in graph.vertices() {
        if label[start.index()] != u32::MAX {
            continue;
        }
        label[start.index()] = start.raw();
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                edges += 1;
                if label[v.index()] == u32::MAX {
                    label[v.index()] = start.raw();
                    stack.push(v);
                }
            }
        }
    }
    (CcOutput { label, rounds: 0 }, edges)
}

/// Validates a CC output: labels match the reference exactly, and every
/// edge connects same-labelled vertices.
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
pub fn validate_cc(graph: &Graph, out: &CcOutput) {
    for (u, v) in graph.edges() {
        assert_eq!(
            out.label[u.index()],
            out.label[v.index()],
            "edge {u}->{v} crosses component labels"
        );
    }
    let (reference, _) = cc_reference(graph);
    for v in graph.vertices() {
        assert_eq!(
            out.label[v.index()],
            reference.label[v.index()],
            "label mismatch at {v}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{complete, cycle, path, star, GraphBuilder, RmatConfig};

    fn check_all_policies(graph: &Graph, machines: usize) {
        let mut outputs = Vec::new();
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::Gemini,
            Policy::Galois,
        ] {
            let cfg = EngineConfig::new(machines, policy);
            let (out, _) = cc(graph, &cfg);
            validate_cc(graph, &out);
            outputs.push(out);
        }
        for o in &outputs[1..] {
            assert_eq!(o.label, outputs[0].label, "policies must agree exactly");
        }
    }

    /// Two disjoint cycles over one vertex set.
    fn two_components(n: usize) -> Graph {
        let mut b = GraphBuilder::new(2 * n);
        for i in 0..n as u32 {
            let m = n as u32;
            b.add_edge(Vid::new(i), Vid::new((i + 1) % m));
            b.add_edge(Vid::new(m + i), Vid::new(m + (i + 1) % m));
        }
        b.symmetrize(true).dedup(true).build()
    }

    #[test]
    fn two_cycles_get_two_labels() {
        // oracle: component labels are the smallest member ids, 0 and n.
        let g = two_components(25);
        let (out, _) = cc(&g, &EngineConfig::new(3, Policy::symple()));
        assert_eq!(out.components(), 2);
        for v in 0..25 {
            assert_eq!(out.label[v], 0);
            assert_eq!(out.label[25 + v], 25);
        }
        check_all_policies(&g, 3);
    }

    #[test]
    fn connected_classics_collapse_to_zero() {
        for g in [path(90), cycle(64), star(120), complete(11)] {
            let (out, _) = cc(&g, &EngineConfig::new(4, Policy::symple()));
            assert_eq!(out.components(), 1);
            assert!(out.label.iter().all(|&l| l == 0));
            validate_cc(&g, &out);
        }
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(Vid::new(1), Vid::new(4));
        let g = b.symmetrize(true).build();
        let (out, _) = cc(&g, &EngineConfig::new(2, Policy::symple()));
        assert_eq!(out.components(), 5);
        assert_eq!(out.label, vec![0, 1, 2, 3, 1, 5]);
    }

    #[test]
    fn rmat_across_policies_and_machines() {
        let g = RmatConfig::graph500(9, 8).cleaned(true).generate();
        check_all_policies(&g, 5);
        check_all_policies(&g, 1);
    }

    #[test]
    fn break_on_zero_exercises_dependency_skips() {
        // On a symmetrized RMAT graph the giant component carries label 0,
        // so the SympleGraph policy must actually skip scans that Gemini
        // performs.
        let g = RmatConfig::graph500(9, 16).cleaned(true).generate();
        let (out_g, st_g) = cc(&g, &EngineConfig::new(4, Policy::Gemini));
        let (out_s, st_s) = cc(&g, &EngineConfig::new(4, Policy::symple()));
        assert_eq!(out_g.label, out_s.label, "policies must agree on labels");
        assert!(st_s.work.skipped_by_dep() > 0, "break must propagate");
        assert!(
            st_s.work.edges_traversed() <= st_g.work.edges_traversed(),
            "dependency propagation must not increase traversals"
        );
    }
}
