//! PageRank with convergence detection, in fixed-point arithmetic.
//!
//! Ranks are integers in millionths ([`SCALE`]), damping is 0.85
//! ([`ALPHA`] / [`SCALE`]), and every per-vertex sum is a fold of `u64`
//! additions — associative and commutative, so the result is
//! bit-identical no matter how the engine orders partial sums across
//! machines, threads, exchange frames, or policies. (A float formulation
//! would trip exactly the order-sensitivity the UDF linter's W005 warns
//! about.)
//!
//! Iteration stops when the largest per-vertex rank movement (the
//! residual, allreduce-maxed across machines) drops to the caller's
//! tolerance — the convergence-detection shape none of the paper's five
//! kernels exercise: a data-dependent termination decided by collective
//! agreement every round. Dangling mass (vertices without out-edges) is
//! redistributed uniformly.

use symple_core::{run_spmd, BitDep, EngineConfig, PullProgram, RunStats, SignalOutcome, Worker};
use symple_graph::{Graph, Vid};

/// Fixed-point scale: ranks are expressed in `1/SCALE` units.
pub const SCALE: u64 = 1_000_000;
/// Damping factor in fixed point (`0.85 * SCALE`).
pub const ALPHA: u64 = 850_000;
/// Teleport mass per vertex in fixed point (`SCALE - ALPHA`).
pub const BASE: u64 = SCALE - ALPHA;

/// Result of a PageRank run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagerankOutput {
    /// Fixed-point rank per vertex (initial mass is [`SCALE`] each).
    pub rank: Vec<u64>,
    /// Iterations performed.
    pub iterations: u32,
    /// Whether the residual reached the tolerance before the iteration
    /// cap.
    pub converged: bool,
}

impl PagerankOutput {
    /// Total rank mass (≤ `n * SCALE`; integer truncation only sheds
    /// mass, never creates it).
    pub fn total_mass(&self) -> u64 {
        self.rank.iter().sum()
    }
}

/// Pull signal: sum the precomputed out-degree-normalised contributions
/// of the in-neighbours in this segment and emit the partial sum (`u64`
/// addition commutes, so segment order is invisible).
pub struct PagerankPull<'a> {
    /// `rank[u] / out_degree(u)` per vertex (0 for dangling vertices).
    pub contrib: &'a [u64],
}

impl PullProgram for PagerankPull<'_> {
    type Update = u64;
    type Dep = BitDep;

    fn dense_active(&self, _v: Vid) -> bool {
        true
    }

    fn signal(
        &self,
        _v: Vid,
        srcs: &[Vid],
        _dep: &mut BitDep,
        _slot: usize,
        _carried: bool,
        emit: &mut dyn FnMut(u64),
    ) -> SignalOutcome {
        let mut acc = 0u64;
        for &u in srcs {
            acc += self.contrib[u.index()];
        }
        if acc > 0 {
            emit(acc);
        }
        SignalOutcome::scanned(srcs.len() as u64)
    }
}

fn pagerank_body(w: &mut Worker, tol: u64, max_iters: u32) -> (Vec<u64>, u32, bool) {
    let graph = w.graph();
    let n = graph.num_vertices();
    let mut rank = vec![SCALE; n];
    let mut contrib = vec![0u64; n];
    let mut sums = vec![0u64; n];
    let mut dep = BitDep::new(w.dep_slots_needed());
    let mut iterations = 0u32;
    let mut converged = false;
    while iterations < max_iters && !converged {
        iterations += 1;
        // Contributions and dangling mass come from the globally synced
        // rank array, so every machine derives the same values.
        let mut local_dangling = 0u64;
        for v in graph.vertices() {
            let deg = graph.out_degree(v) as u64;
            contrib[v.index()] = rank[v.index()].checked_div(deg).unwrap_or(0);
        }
        for v in w.masters() {
            if graph.out_degree(v) == 0 {
                local_dangling += rank[v.index()];
            }
        }
        let dangling_share = w.allreduce(local_dangling, |a, b| a + b) / n as u64;
        sums.fill(0);
        {
            let prog = PagerankPull { contrib: &contrib };
            let mut apply = |v: Vid, partial: u64| -> bool {
                sums[v.index()] += partial;
                false
            };
            w.pull(&prog, &mut dep, &mut apply);
        }
        let mut local_residual = 0u64;
        for v in w.masters() {
            let new = BASE + ALPHA * (sums[v.index()] + dangling_share) / SCALE;
            local_residual = local_residual.max(new.abs_diff(rank[v.index()]));
            rank[v.index()] = new;
        }
        w.sync_values(&mut rank);
        let residual = w.allreduce(local_residual, |a, b| a.max(b));
        converged = residual <= tol;
    }
    (rank, iterations, converged)
}

/// Runs distributed PageRank until the max per-vertex movement is ≤ `tol`
/// (fixed-point units) or `max_iters` is hit.
///
/// # Example
///
/// ```
/// use symple_algos::{pagerank, pagerank::SCALE};
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::cycle;
///
/// let g = cycle(16); // 1-regular both ways: ranks stay uniform
/// let (out, _) = pagerank(&g, &EngineConfig::new(2, Policy::symple()), 1000, 50);
/// assert!(out.converged);
/// assert!(out.rank.iter().all(|&r| r == SCALE));
/// ```
///
/// # Panics
///
/// Panics if the graph is empty or `max_iters` is zero.
pub fn pagerank(
    graph: &Graph,
    cfg: &EngineConfig,
    tol: u64,
    max_iters: u32,
) -> (PagerankOutput, RunStats) {
    assert!(graph.num_vertices() > 0, "pagerank needs vertices");
    assert!(max_iters > 0, "max_iters must be positive");
    let mut res = run_spmd(graph, cfg, |w| pagerank_body(w, tol, max_iters));
    let (rank, iterations, converged) = res.outputs.swap_remove(0);
    (
        PagerankOutput {
            rank,
            iterations,
            converged,
        },
        res.stats,
    )
}

/// Single-threaded reference: the identical fixed-point iteration, so the
/// distributed result must match bit for bit. Returns the output and
/// edges examined.
pub fn pagerank_reference(graph: &Graph, tol: u64, max_iters: u32) -> (PagerankOutput, u64) {
    let n = graph.num_vertices();
    let mut rank = vec![SCALE; n];
    let mut edges = 0u64;
    let mut iterations = 0u32;
    let mut converged = false;
    while iterations < max_iters && !converged {
        iterations += 1;
        let contrib: Vec<u64> = graph
            .vertices()
            .map(|v| {
                let deg = graph.out_degree(v) as u64;
                rank[v.index()].checked_div(deg).unwrap_or(0)
            })
            .collect();
        let dangling: u64 = graph
            .vertices()
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| rank[v.index()])
            .sum();
        let dangling_share = dangling / n as u64;
        let mut residual = 0u64;
        for v in graph.vertices() {
            let mut sum = 0u64;
            for &u in graph.in_neighbors(v) {
                edges += 1;
                sum += contrib[u.index()];
            }
            let new = BASE + ALPHA * (sum + dangling_share) / SCALE;
            residual = residual.max(new.abs_diff(rank[v.index()]));
            rank[v.index()] = new;
        }
        converged = residual <= tol;
    }
    (
        PagerankOutput {
            rank,
            iterations,
            converged,
        },
        edges,
    )
}

/// Validates a PageRank output: bit-identical to the fixed-point
/// reference (ranks, iteration count, and convergence flag), with mass
/// bounded by the teleport floor and the initial total.
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
pub fn validate_pagerank(graph: &Graph, tol: u64, max_iters: u32, out: &PagerankOutput) {
    let n = graph.num_vertices() as u64;
    let (reference, _) = pagerank_reference(graph, tol, max_iters);
    assert_eq!(out.iterations, reference.iterations, "iteration count");
    assert_eq!(out.converged, reference.converged, "convergence flag");
    for v in graph.vertices() {
        assert_eq!(
            out.rank[v.index()],
            reference.rank[v.index()],
            "rank mismatch at {v}"
        );
    }
    assert!(out.rank.iter().all(|&r| r >= BASE), "teleport floor");
    assert!(out.total_mass() <= n * SCALE, "mass must not be created");
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{complete, cycle, path, star, GraphBuilder, RmatConfig};

    const TOL: u64 = 100; // 1e-4 in fixed point
    const ITERS: u32 = 60;

    fn check_all_policies(graph: &Graph, machines: usize) {
        let mut outputs = Vec::new();
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::Gemini,
            Policy::Galois,
        ] {
            let cfg = EngineConfig::new(machines, policy);
            let (out, _) = pagerank(graph, &cfg, TOL, ITERS);
            validate_pagerank(graph, TOL, ITERS, &out);
            outputs.push(out);
        }
        for o in &outputs[1..] {
            assert_eq!(o.rank, outputs[0].rank, "policies must agree exactly");
            assert_eq!(o.iterations, outputs[0].iterations);
        }
    }

    #[test]
    fn regular_graphs_stay_uniform() {
        // oracle: on a regular graph the uniform vector is the fixpoint,
        // so iteration 1 already moves nothing.
        for g in [cycle(40), complete(9)] {
            let (out, _) = pagerank(&g, &EngineConfig::new(3, Policy::symple()), TOL, ITERS);
            assert!(out.converged);
            assert_eq!(out.iterations, 1);
            assert!(out.rank.iter().all(|&r| r == SCALE));
            validate_pagerank(&g, TOL, ITERS, &out);
        }
    }

    #[test]
    fn star_hub_dominates() {
        // oracle: the undirected star's hub out-ranks every leaf. The
        // bipartite structure converges at rate α^k from ~n·SCALE, so
        // give it the ~120 rounds that needs.
        let g = star(50);
        let (out, _) = pagerank(&g, &EngineConfig::new(2, Policy::symple()), TOL, 120);
        assert!(out.converged);
        let hub = out.rank[0];
        assert!(out.rank[1..].iter().all(|&leaf| leaf < hub));
        validate_pagerank(&g, TOL, 120, &out);
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // 0 -> 1 -> 2, vertex 2 dangling; without redistribution vertex
        // 0 would sit at the bare teleport floor forever.
        let mut b = GraphBuilder::new(3);
        b.add_edge(Vid::new(0), Vid::new(1));
        b.add_edge(Vid::new(1), Vid::new(2));
        let g = b.build();
        let (out, _) = pagerank(&g, &EngineConfig::new(2, Policy::symple()), TOL, ITERS);
        validate_pagerank(&g, TOL, ITERS, &out);
        assert!(out.rank[0] > BASE, "dangling mass must flow back");
    }

    #[test]
    fn path_and_rmat_across_policies() {
        check_all_policies(&path(50), 3);
        let g = RmatConfig::graph500(9, 8).cleaned(true).generate();
        check_all_policies(&g, 5);
    }

    #[test]
    fn iteration_cap_reports_non_convergence() {
        let g = RmatConfig::graph500(8, 8).cleaned(true).generate();
        let (out, _) = pagerank(&g, &EngineConfig::new(2, Policy::symple()), 0, 2);
        assert_eq!(out.iterations, 2);
        assert!(!out.converged, "tol 0 cannot converge in 2 rounds");
        validate_pagerank(&g, 0, 2, &out);
    }
}
