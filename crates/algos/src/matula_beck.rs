//! Matula–Beck linear-time core decomposition.
//!
//! The paper's K-core comparison includes "the optimal algorithm with
//! linear complexity … and no loop dependency" (their citation 34,
//! Matula & Beck 1983) — Table 4's
//! parenthesised numbers, §7.2): smallest-last bucket peeling that
//! computes every vertex's *coreness* in `O(|V| + |E|)`. The k-core is
//! then `{v : core(v) ≥ k}` for any `k`, so one run answers every
//! threshold — which is why it wins on graphs with long chain structure
//! (tw, fr) and loses to SympleGraph's iterative algorithm on large
//! synthesized graphs where few peeling rounds suffice.

use symple_graph::{Bitmap, Graph, Vid};

/// Computes the coreness of every vertex (Matula–Beck bucket peeling).
/// Returns `(core_numbers, edges_processed)`.
///
/// Treats the graph as undirected via in-neighbours; pass a symmetrized
/// graph (the same convention as the distributed K-core).
pub fn coreness(graph: &Graph) -> (Vec<u32>, u64) {
    let n = graph.num_vertices();
    let mut degree: Vec<u32> = (0..n)
        .map(|i| graph.in_degree(Vid::from_index(i)) as u32)
        .collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // bucket sort vertices by degree
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..max_deg + 1 {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut order = vec![0u32; n]; // vertices sorted by current degree
    let mut pos = vec![0usize; n]; // position of each vertex in `order`
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            order[cursor[d]] = v as u32;
            pos[v] = cursor[d];
            cursor[d] += 1;
        }
    }
    // bucket_start[d] = index of the first vertex with degree >= d
    let mut core = vec![0u32; n];
    let mut edges = 0u64;
    for i in 0..n {
        let v = order[i] as usize;
        core[v] = degree[v];
        for &u in graph.in_neighbors(Vid::from_index(v)) {
            edges += 1;
            let u = u.index();
            if degree[u] > degree[v] {
                // move u to the front of its bucket, then shrink its degree
                let du = degree[u] as usize;
                let pu = pos[u];
                let pw = bucket_start[du];
                let w = order[pw] as usize;
                if u != w {
                    order.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bucket_start[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    (core, edges)
}

/// The k-core derived from coreness values.
pub fn kcore_from_coreness(core: &[u32], k: u32) -> Bitmap {
    let mut bm = Bitmap::new(core.len());
    for (i, &c) in core.iter().enumerate() {
        if c >= k {
            bm.set(i);
        }
    }
    bm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::kcore_reference;
    use symple_graph::{complete, cycle, path, star, RmatConfig};

    fn check_against_peeling(graph: &Graph, ks: &[u32]) {
        let (core, _) = coreness(graph);
        for &k in ks {
            let fast = kcore_from_coreness(&core, k);
            let (slow, _) = kcore_reference(graph, k);
            assert_eq!(fast, slow, "k={k} mismatch");
        }
    }

    #[test]
    fn structured_graphs() {
        check_against_peeling(&path(50), &[1, 2, 3]);
        check_against_peeling(&cycle(50), &[1, 2, 3]);
        check_against_peeling(&star(60), &[1, 2]);
        check_against_peeling(&complete(10), &[5, 9, 10]);
    }

    #[test]
    fn complete_graph_coreness() {
        let (core, _) = coreness(&complete(8));
        assert!(core.iter().all(|&c| c == 7));
    }

    #[test]
    fn path_coreness_is_one() {
        let (core, _) = coreness(&path(10));
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn rmat_agrees_with_peeling() {
        let g = RmatConfig::graph500(8, 8).cleaned(true).generate();
        check_against_peeling(&g, &[2, 4, 8, 16]);
    }

    #[test]
    fn coreness_is_monotone_under_k() {
        let g = RmatConfig::graph500(7, 6).cleaned(true).generate();
        let (core, _) = coreness(&g);
        let c2 = kcore_from_coreness(&core, 2);
        let c4 = kcore_from_coreness(&core, 4);
        for i in 0..core.len() {
            if c4.get(i) {
                assert!(c2.get(i), "4-core must be inside 2-core");
            }
        }
    }

    #[test]
    fn edge_count_is_linear() {
        let g = cycle(100);
        let (_, edges) = coreness(&g);
        assert_eq!(edges, g.num_edges() as u64);
    }

    #[test]
    fn empty_graph() {
        let g = symple_graph::GraphBuilder::new(0).build();
        let (core, edges) = coreness(&g);
        assert!(core.is_empty());
        assert_eq!(edges, 0);
    }
}
