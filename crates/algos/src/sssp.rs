//! Delta-stepping single-source shortest paths.
//!
//! The first weighted kernel in the suite: edge weights are derived
//! deterministically from a splittable hash ([`common::edge_weight`],
//! `1..=8`), so every machine — and the single-threaded Dijkstra
//! reference — agrees on the weighted graph without shipping weights.
//!
//! The engine shape is new relative to the paper's five kernels: a
//! *bucketed* push frontier (Meyer & Sanders' delta-stepping with
//! `Δ = max weight`, so no light/heavy edge split is needed). Machines
//! agree on the globally smallest pending bucket by allreduce, settle it
//! to fixpoint with repeated push relaxations (distance updates
//! min-combine at the destination master, so apply order is invisible),
//! then advance. Because positive weights keep later buckets from ever
//! improving a settled one, the result is exact.

use crate::common;
use symple_core::{run_spmd, EngineConfig, PushProgram, RunStats, Worker};
use symple_graph::{Bitmap, Graph, Vid};

/// Marker for "unreached" in distance arrays.
pub const INF: u64 = u64::MAX;

/// Result of an SSSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspOutput {
    /// Shortest weighted distance per vertex (`INF` if unreached).
    pub dist: Vec<u64>,
    /// Buckets settled before the frontier drained.
    pub buckets: u32,
}

impl SsspOutput {
    /// Number of vertices reached (including the root).
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != INF).count()
    }
}

/// Push relaxation: offer `dist[u] + w(u, v)` to every out-neighbour.
/// The stale local distance is a sound filter (distances only decrease,
/// and non-owned entries are never lower than the master's copy).
pub struct SsspPush<'a> {
    /// Distance snapshot for this relaxation round.
    pub dist: &'a [u64],
    /// Weight seed (see [`common::edge_weight`]).
    pub seed: u64,
}

impl PushProgram for SsspPush<'_> {
    type Update = u64;

    fn signal(&self, u: Vid, dsts: &[Vid], emit: &mut dyn FnMut(Vid, u64)) -> u64 {
        let du = self.dist[u.index()];
        for &d in dsts {
            let cand = du + common::edge_weight(self.seed, u, d);
            if cand < self.dist[d.index()] {
                emit(d, cand);
            }
        }
        dsts.len() as u64
    }
}

fn sssp_body(w: &mut Worker, root: Vid, seed: u64) -> (Vec<u64>, u32) {
    let graph = w.graph();
    let n = graph.num_vertices();
    let delta = common::MAX_EDGE_WEIGHT;
    let mut dist = vec![INF; n];
    // Masters pending relaxation (apply only runs on the destination
    // master, so this never contains non-local vertices).
    let mut pending = Bitmap::new(n);
    if w.is_master(root) {
        dist[root.index()] = 0;
        pending.set_vid(root);
    }
    let mut buckets = 0u32;
    loop {
        let local_min = pending
            .iter_ones()
            .map(|i| dist[i] / delta)
            .min()
            .unwrap_or(u64::MAX);
        let bucket = w.allreduce(local_min, |a, b| a.min(b));
        if bucket == u64::MAX {
            break;
        }
        buckets += 1;
        // Settle the bucket: relax until no machine holds a pending
        // vertex inside it (in-bucket relaxations can re-activate).
        loop {
            let frontier: Vec<Vid> = pending
                .iter_ones()
                .filter(|&i| dist[i] / delta == bucket)
                .map(|i| Vid::new(i as u32))
                .collect();
            if w.allreduce(frontier.len() as u64, |a, b| a + b) == 0 {
                break;
            }
            for &v in &frontier {
                pending.clear(v.index());
            }
            let snapshot = dist.clone();
            let prog = SsspPush {
                dist: &snapshot,
                seed,
            };
            let mut apply = |v: Vid, cand: u64| -> bool {
                if cand < dist[v.index()] {
                    dist[v.index()] = cand;
                    pending.set_vid(v);
                    true
                } else {
                    false
                }
            };
            w.push(&prog, &frontier, &mut apply);
        }
    }
    w.sync_values(&mut dist);
    (dist, buckets)
}

/// Runs distributed delta-stepping SSSP from `root` with hash-derived
/// weights under `seed`.
///
/// # Example
///
/// ```
/// use symple_algos::{sssp, sssp_reference};
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::{path, Vid};
///
/// let g = path(32);
/// let cfg = EngineConfig::new(2, Policy::symple());
/// let (out, _stats) = sssp(&g, &cfg, Vid::new(0), 7);
/// assert_eq!(out.dist, sssp_reference(&g, Vid::new(0), 7).0.dist);
/// ```
///
/// # Panics
///
/// Panics if `root` is out of bounds.
pub fn sssp(graph: &Graph, cfg: &EngineConfig, root: Vid, seed: u64) -> (SsspOutput, RunStats) {
    assert!(root.index() < graph.num_vertices(), "root out of bounds");
    let mut res = run_spmd(graph, cfg, |w| sssp_body(w, root, seed));
    let (dist, buckets) = res.outputs.swap_remove(0);
    (SsspOutput { dist, buckets }, res.stats)
}

/// Single-threaded reference: Dijkstra over out-edges with the same
/// hash-derived weights. Returns the output and edges relaxed.
pub fn sssp_reference(graph: &Graph, root: Vid, seed: u64) -> (SsspOutput, u64) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.num_vertices();
    let mut dist = vec![INF; n];
    dist[root.index()] = 0;
    let mut heap = BinaryHeap::new();
    heap.push((Reverse(0u64), root.raw()));
    let mut edges = 0u64;
    while let Some((Reverse(d), u_raw)) = heap.pop() {
        let u = Vid::new(u_raw);
        if d > dist[u.index()] {
            continue;
        }
        for &v in graph.out_neighbors(u) {
            edges += 1;
            let cand = d + common::edge_weight(seed, u, v);
            if cand < dist[v.index()] {
                dist[v.index()] = cand;
                heap.push((Reverse(cand), v.raw()));
            }
        }
    }
    (SsspOutput { dist, buckets: 0 }, edges)
}

/// Validates an SSSP output: exact distances against the Dijkstra
/// reference plus the per-edge triangle inequality.
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
pub fn validate_sssp(graph: &Graph, root: Vid, seed: u64, out: &SsspOutput) {
    assert_eq!(out.dist[root.index()], 0, "root distance");
    let (reference, _) = sssp_reference(graph, root, seed);
    for v in graph.vertices() {
        assert_eq!(
            out.dist[v.index()],
            reference.dist[v.index()],
            "distance mismatch at {v}"
        );
    }
    for (u, v) in graph.edges() {
        if out.dist[u.index()] != INF {
            let w = common::edge_weight(seed, u, v);
            assert!(
                out.dist[v.index()] <= out.dist[u.index()] + w,
                "edge {u}->{v} (w {w}) violates the triangle inequality"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{cycle, grid, path, star, RmatConfig};

    fn check_all_policies(graph: &Graph, machines: usize, root: Vid, seed: u64) {
        let mut outputs = Vec::new();
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::Gemini,
            Policy::Galois,
        ] {
            let cfg = EngineConfig::new(machines, policy);
            let (out, _) = sssp(graph, &cfg, root, seed);
            validate_sssp(graph, root, seed, &out);
            outputs.push(out);
        }
        for o in &outputs[1..] {
            assert_eq!(o.dist, outputs[0].dist, "policies must agree exactly");
        }
    }

    #[test]
    fn path_distances_are_prefix_sums() {
        // oracle: on a path the shortest distance is the only route — the
        // running sum of the hash weights along it.
        let g = path(40);
        let seed = 11;
        let (out, _) = sssp(
            &g,
            &EngineConfig::new(3, Policy::symple()),
            Vid::new(0),
            seed,
        );
        let mut acc = 0u64;
        assert_eq!(out.dist[0], 0);
        for v in 1..40u32 {
            acc += common::edge_weight(seed, Vid::new(v - 1), Vid::new(v));
            assert_eq!(out.dist[v as usize], acc, "prefix sum at {v}");
        }
    }

    #[test]
    fn star_distances_are_single_hops() {
        // oracle: from the hub every leaf is exactly one (weighted) hop.
        let g = star(60);
        let seed = 5;
        let (out, _) = sssp(
            &g,
            &EngineConfig::new(2, Policy::symple()),
            Vid::new(0),
            seed,
        );
        for v in 1..60u32 {
            let direct = common::edge_weight(seed, Vid::new(0), Vid::new(v));
            assert_eq!(out.dist[v as usize], direct, "hub hop to {v}");
        }
    }

    #[test]
    fn grid_and_cycle_match_dijkstra() {
        check_all_policies(&grid(9, 11), 4, Vid::new(0), 3);
        check_all_policies(&cycle(70), 3, Vid::new(13), 3);
    }

    #[test]
    fn rmat_matches_dijkstra_across_policies() {
        let g = RmatConfig::graph500(9, 8).cleaned(true).generate();
        check_all_policies(&g, 5, Vid::new(3), 42);
    }

    #[test]
    fn disconnected_vertices_stay_inf() {
        let g = RmatConfig::graph500(8, 2).generate(); // directed, sparse
        let cfg = EngineConfig::new(2, Policy::symple());
        let (out, _) = sssp(&g, &cfg, Vid::new(1), 9);
        validate_sssp(&g, Vid::new(1), 9, &out);
        assert!(
            out.reached() < g.num_vertices(),
            "sparse digraph disconnects"
        );
    }

    #[test]
    fn weights_are_deterministic_and_bounded() {
        for (u, v) in [(0u32, 1u32), (5, 9), (1, 0)] {
            let w = common::edge_weight(7, Vid::new(u), Vid::new(v));
            assert_eq!(w, common::edge_weight(7, Vid::new(u), Vid::new(v)));
            assert!((1..=common::MAX_EDGE_WEIGHT).contains(&w));
        }
    }
}
