//! Direction-optimizing breadth-first search (paper §2.1, Figures 1–2).
//!
//! Bottom-up (pull) BFS is the paper's flagship example of loop-carried
//! dependency: an unvisited vertex scans its in-neighbours and **breaks**
//! at the first one in the frontier. Distributed naively, machines keep
//! scanning (and keep sending parent updates) after some other machine
//! already found a parent; SympleGraph's dependency propagation makes the
//! break global.
//!
//! As in the evaluation (§7.1), we run the adaptive direction-switching
//! variant (Beamer et al.): top-down (push) while the frontier is small,
//! bottom-up (pull) when it covers enough edges.

use symple_core::{
    run_spmd, BitDep, EngineConfig, PullProgram, PushProgram, RunStats, SignalOutcome, Worker,
};
use symple_graph::{Bitmap, Graph, Vid};

/// Marker for "no vertex" in depth/parent arrays.
pub const NONE: u32 = u32::MAX;

/// Switch push → pull when `frontier_edges > unexplored_edges / ALPHA`
/// (Beamer's α).
const ALPHA: u64 = 14;
/// Switch pull → push when the frontier shrinks below `|V| / BETA`
/// (Beamer's β).
const BETA: u64 = 24;

/// Result of a BFS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsOutput {
    /// BFS depth per vertex (`NONE` if unreached).
    pub depth: Vec<u32>,
    /// Parent per vertex (`NONE` if unreached; the root is its own parent).
    pub parent: Vec<u32>,
}

impl BfsOutput {
    /// Number of vertices reached (including the root).
    pub fn reached(&self) -> usize {
        self.depth.iter().filter(|&&d| d != NONE).count()
    }
}

/// Bottom-up signal UDF (Figure 1b): scan in-neighbours, break at the
/// first frontier member, emit it as the parent.
pub struct BfsPull<'a> {
    /// Last level's frontier.
    pub frontier: &'a Bitmap,
    /// Visited set as of the start of this level.
    pub visited: &'a Bitmap,
}

impl PullProgram for BfsPull<'_> {
    type Update = Vid;
    type Dep = BitDep;

    fn dense_active(&self, v: Vid) -> bool {
        !self.visited.get_vid(v)
    }

    fn signal(
        &self,
        _v: Vid,
        srcs: &[Vid],
        dep: &mut BitDep,
        slot: usize,
        _carried: bool,
        emit: &mut dyn FnMut(Vid),
    ) -> SignalOutcome {
        for (i, &u) in srcs.iter().enumerate() {
            if self.frontier.get_vid(u) {
                emit(u);
                dep.mark(slot);
                return SignalOutcome::broke_after(i as u64 + 1);
            }
        }
        SignalOutcome::scanned(srcs.len() as u64)
    }
}

/// Top-down signal UDF: push the frontier along out-edges.
pub struct BfsPush<'a> {
    /// Visited set (a stale copy is a sound filter: visited is monotone).
    pub visited: &'a Bitmap,
}

impl PushProgram for BfsPush<'_> {
    type Update = Vid;

    fn signal(&self, u: Vid, dsts: &[Vid], emit: &mut dyn FnMut(Vid, Vid)) -> u64 {
        for &d in dsts {
            if !self.visited.get_vid(d) {
                emit(d, u);
            }
        }
        dsts.len() as u64
    }
}

/// Traversal direction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Beamer-style adaptive switching (the evaluation's configuration).
    #[default]
    Adaptive,
    /// Top-down only (never uses loop-carried dependency).
    PushOnly,
    /// Bottom-up only (maximum exposure to loop-carried dependency).
    PullOnly,
}

/// The SPMD body: runs on every machine, returns the fully synchronised
/// `(depth, parent)` arrays.
fn bfs_body(w: &mut Worker, root: Vid, direction: Direction) -> (Vec<u32>, Vec<u32>) {
    let graph = w.graph();
    let n = graph.num_vertices();
    let mut visited = Bitmap::new(n);
    let mut frontier = Bitmap::new(n);
    let mut depth = vec![NONE; n];
    let mut parent = vec![NONE; n];
    let mut local_frontier: Vec<Vid> = Vec::new();

    if w.is_master(root) {
        depth[root.index()] = 0;
        parent[root.index()] = root.raw();
        visited.set_vid(root);
        frontier.set_vid(root);
        local_frontier.push(root);
    }
    w.sync_bitmap(&mut visited);
    w.sync_bitmap(&mut frontier);

    let total_edges = graph.num_edges() as u64;
    let mut unexplored_edges = total_edges
        - w.allreduce(
            graph.out_degree(root) as u64 * u64::from(w.is_master(root)),
            |a, b| a + b,
        );
    let mut frontier_total = w.allreduce(local_frontier.len() as u64, |a, b| a + b);
    let mut frontier_edges = w.allreduce(
        local_frontier
            .iter()
            .map(|&v| graph.out_degree(v) as u64)
            .sum::<u64>(),
        |a, b| a + b,
    );
    let mut pulling = false;

    let mut dep = BitDep::new(w.dep_slots_needed());
    let mut level = 0u32;
    while frontier_total > 0 {
        level += 1;
        // Beamer's direction heuristic, decided from allreduced values so
        // every machine agrees.
        match direction {
            Direction::PushOnly => pulling = false,
            Direction::PullOnly => pulling = true,
            Direction::Adaptive => {
                if pulling {
                    if frontier_total < n as u64 / BETA {
                        pulling = false;
                    }
                } else if frontier_edges * ALPHA > unexplored_edges {
                    pulling = true;
                }
            }
        }

        let mut new_frontier: Vec<Vid> = Vec::new();
        {
            let mut apply = |v: Vid, par: Vid| -> bool {
                if depth[v.index()] == NONE {
                    depth[v.index()] = level;
                    parent[v.index()] = par.raw();
                    new_frontier.push(v);
                    true
                } else {
                    false
                }
            };
            if pulling {
                let prog = BfsPull {
                    frontier: &frontier,
                    visited: &visited,
                };
                w.pull(&prog, &mut dep, &mut apply);
            } else {
                let prog = BfsPush { visited: &visited };
                w.push(&prog, &local_frontier, &mut apply);
            }
        }

        for &v in &new_frontier {
            visited.set_vid(v);
        }
        frontier.clear_all();
        for &v in &new_frontier {
            frontier.set_vid(v);
        }
        w.sync_bitmap(&mut visited);
        w.sync_bitmap(&mut frontier);

        let local_out: u64 = new_frontier
            .iter()
            .map(|&v| graph.out_degree(v) as u64)
            .sum();
        frontier_edges = w.allreduce(local_out, |a, b| a + b);
        frontier_total = w.allreduce(new_frontier.len() as u64, |a, b| a + b);
        unexplored_edges = unexplored_edges.saturating_sub(frontier_edges);
        local_frontier = new_frontier;
    }

    w.sync_values(&mut depth);
    w.sync_values(&mut parent);
    (depth, parent)
}

/// Runs distributed direction-optimizing BFS from `root`.
///
/// # Example
///
/// ```
/// use symple_algos::bfs;
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::{path, Vid};
///
/// let g = path(64);
/// let cfg = EngineConfig::new(2, Policy::symple());
/// let (out, _stats) = bfs(&g, &cfg, Vid::new(0));
/// assert_eq!(out.depth[63], 63);
/// ```
///
/// # Panics
///
/// Panics if `root` is out of bounds.
pub fn bfs(graph: &Graph, cfg: &EngineConfig, root: Vid) -> (BfsOutput, RunStats) {
    bfs_with_direction(graph, cfg, root, Direction::Adaptive)
}

/// Runs BFS with an explicit [`Direction`] policy (the adaptive default
/// is what the paper evaluates; push-only/pull-only support direction
/// studies).
///
/// # Panics
///
/// Panics if `root` is out of bounds.
pub fn bfs_with_direction(
    graph: &Graph,
    cfg: &EngineConfig,
    root: Vid,
    direction: Direction,
) -> (BfsOutput, RunStats) {
    assert!(root.index() < graph.num_vertices(), "root out of bounds");
    let mut res = run_spmd(graph, cfg, |w| bfs_body(w, root, direction));
    let (depth, parent) = res.outputs.swap_remove(0);
    (BfsOutput { depth, parent }, res.stats)
}

/// Single-threaded reference BFS (over out-edges). Returns the output and
/// the number of edges traversed (for the COST metric).
pub fn bfs_reference(graph: &Graph, root: Vid) -> (BfsOutput, u64) {
    let n = graph.num_vertices();
    let mut depth = vec![NONE; n];
    let mut parent = vec![NONE; n];
    let mut queue = std::collections::VecDeque::new();
    depth[root.index()] = 0;
    parent[root.index()] = root.raw();
    queue.push_back(root);
    let mut edges = 0u64;
    while let Some(u) = queue.pop_front() {
        for &d in graph.out_neighbors(u) {
            edges += 1;
            if depth[d.index()] == NONE {
                depth[d.index()] = depth[u.index()] + 1;
                parent[d.index()] = u.raw();
                queue.push_back(d);
            }
        }
    }
    (BfsOutput { depth, parent }, edges)
}

/// Validates a BFS output: exact depths against the reference, plus
/// structural parent checks (parents differ legitimately between engines).
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
pub fn validate_bfs(graph: &Graph, root: Vid, out: &BfsOutput) {
    let (reference, _) = bfs_reference(graph, root);
    assert_eq!(out.depth[root.index()], 0, "root depth");
    assert_eq!(out.parent[root.index()], root.raw(), "root parent");
    for v in graph.vertices() {
        let d = out.depth[v.index()];
        assert_eq!(
            d,
            reference.depth[v.index()],
            "depth mismatch at {v} (got {d}, want {})",
            reference.depth[v.index()]
        );
        if v == root {
            continue;
        }
        if d == NONE {
            assert_eq!(out.parent[v.index()], NONE, "unreached {v} has a parent");
        } else {
            let p = Vid::new(out.parent[v.index()]);
            assert_eq!(
                out.depth[p.index()],
                d - 1,
                "parent of {v} not one level up"
            );
            assert!(
                graph.in_neighbors(v).contains(&p),
                "parent edge {p}->{v} missing"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{grid, path, star, RmatConfig};

    fn check_all_policies(graph: &Graph, machines: usize, root: Vid) {
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::SympleGraph {
                differentiated: true,
                double_buffering: false,
            },
            Policy::SympleGraph {
                differentiated: false,
                double_buffering: true,
            },
            Policy::Gemini,
            Policy::Galois,
        ] {
            let cfg = EngineConfig::new(machines, policy);
            let (out, _) = bfs(graph, &cfg, root);
            validate_bfs(graph, root, &out);
        }
    }

    #[test]
    fn path_graph_depths() {
        let g = path(130);
        check_all_policies(&g, 3, Vid::new(0));
        check_all_policies(&g, 1, Vid::new(64));
    }

    #[test]
    fn grid_graph() {
        let g = grid(10, 13);
        check_all_policies(&g, 4, Vid::new(0));
    }

    #[test]
    fn star_high_degree_hub() {
        // hub has in-degree above the differentiated threshold
        let g = star(200);
        check_all_policies(&g, 3, Vid::new(0));
        check_all_policies(&g, 3, Vid::new(5));
    }

    #[test]
    fn rmat_graph_many_machines() {
        let g = RmatConfig::graph500(9, 8).cleaned(true).generate();
        check_all_policies(&g, 5, Vid::new(3));
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = RmatConfig::graph500(8, 2).generate(); // directed, sparse
        let cfg = EngineConfig::new(2, Policy::symple());
        let (out, _) = bfs(&g, &cfg, Vid::new(1));
        validate_bfs(&g, Vid::new(1), &out);
    }

    #[test]
    fn symple_traverses_no_more_edges_than_gemini() {
        let g = RmatConfig::graph500(9, 16).cleaned(true).generate();
        let (out_g, stats_g) = bfs(&g, &EngineConfig::new(4, Policy::Gemini), Vid::new(0));
        let (out_s, stats_s) = bfs(&g, &EngineConfig::new(4, Policy::symple()), Vid::new(0));
        assert_eq!(out_g.depth, out_s.depth, "policies must agree on depths");
        assert!(
            stats_s.work.edges_traversed() <= stats_g.work.edges_traversed(),
            "dependency propagation must not increase edge traversals (symple {} vs gemini {})",
            stats_s.work.edges_traversed(),
            stats_g.work.edges_traversed()
        );
    }

    #[test]
    fn all_directions_agree() {
        let g = RmatConfig::graph500(8, 8).cleaned(true).generate();
        let cfg = EngineConfig::new(3, Policy::symple());
        let root = Vid::new(1);
        let (adaptive, _) = bfs_with_direction(&g, &cfg, root, Direction::Adaptive);
        let (push, st_push) = bfs_with_direction(&g, &cfg, root, Direction::PushOnly);
        let (pull, st_pull) = bfs_with_direction(&g, &cfg, root, Direction::PullOnly);
        assert_eq!(adaptive.depth, push.depth);
        assert_eq!(adaptive.depth, pull.depth);
        validate_bfs(&g, root, &pull);
        // push never uses dependency; pull-only exercises it every level
        assert_eq!(st_push.work.skipped_by_dep(), 0);
        assert!(st_pull.work.skipped_by_dep() > 0);
    }

    #[test]
    fn reference_counts_edges() {
        let g = path(5);
        let (out, edges) = bfs_reference(&g, Vid::new(0));
        assert_eq!(out.reached(), 5);
        assert_eq!(edges, 8); // every directed edge examined once
    }
}
