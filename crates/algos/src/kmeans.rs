//! Graph K-means (paper §2.1, Figure 3c).
//!
//! Distance between vertices is shortest-path length, so assigning every
//! vertex to its nearest center is a multi-source BFS wavefront: an
//! unassigned vertex scans its in-neighbours and **breaks at the first
//! assigned one**, adopting its cluster — the same loop-carried shape as
//! bottom-up BFS. Following §7.1, centers are `√|V|` random vertices,
//! re-drawn each outer iteration; the best clustering (smallest total
//! distance) is kept.
//!
//! Expects a symmetrized graph (see crate docs).

use crate::common::select_distinct;
use symple_core::{run_spmd, BitDep, EngineConfig, PullProgram, RunStats, SignalOutcome, Worker};
use symple_graph::{Bitmap, Graph, Vid};

/// Marker for "unassigned" in cluster arrays.
pub const NONE: u32 = u32::MAX;

/// Result of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansOutput {
    /// Cluster index per vertex (`NONE` = unreachable from every center).
    pub cluster: Vec<u32>,
    /// The winning iteration's centers; `cluster` values index this list.
    pub centers: Vec<Vid>,
    /// Total shortest-path distance of the winning assignment
    /// (unreachable vertices charged `diameter + 1`).
    pub total_distance: u64,
}

impl KmeansOutput {
    /// Number of assigned vertices.
    pub fn assigned(&self) -> usize {
        self.cluster.iter().filter(|&&c| c != NONE).count()
    }
}

/// Signal UDF (Figure 3c): adopt the cluster of the first assigned
/// in-neighbour.
pub struct KmeansPull<'a> {
    /// Vertices already assigned to a cluster.
    pub assigned: &'a Bitmap,
    /// Cluster index per vertex (valid where `assigned`).
    pub cluster: &'a [u32],
}

impl PullProgram for KmeansPull<'_> {
    type Update = u32;
    type Dep = BitDep;

    fn dense_active(&self, v: Vid) -> bool {
        !self.assigned.get_vid(v)
    }

    fn signal(
        &self,
        _v: Vid,
        srcs: &[Vid],
        dep: &mut BitDep,
        slot: usize,
        _carried: bool,
        emit: &mut dyn FnMut(u32),
    ) -> SignalOutcome {
        for (i, &u) in srcs.iter().enumerate() {
            if self.assigned.get_vid(u) {
                emit(self.cluster[u.index()]);
                dep.mark(slot);
                return SignalOutcome::broke_after(i as u64 + 1);
            }
        }
        SignalOutcome::scanned(srcs.len() as u64)
    }
}

/// One assignment wavefront from the given centers. Returns
/// `(cluster, total_distance)`.
fn assign_from_centers(w: &mut Worker, centers: &[Vid], dep: &mut BitDep) -> (Vec<u32>, u64) {
    let graph = w.graph();
    let n = graph.num_vertices();
    let mut cluster = vec![NONE; n];
    let mut assigned = Bitmap::new(n);
    let mut dist = vec![0u32; n];
    for (idx, &c) in centers.iter().enumerate() {
        cluster[c.index()] = idx as u32;
        assigned.set_vid(c);
    }
    let mut round = 0u32;
    loop {
        round += 1;
        let mut pending: Vec<(Vid, u32)> = Vec::new();
        let mut claimed = Bitmap::new(n);
        {
            let prog = KmeansPull {
                assigned: &assigned,
                cluster: &cluster,
            };
            let mut apply = |v: Vid, cid: u32| -> bool {
                if claimed.set_vid(v) {
                    false
                } else {
                    pending.push((v, cid));
                    true
                }
            };
            w.pull(&prog, dep, &mut apply);
        }
        let newly: Vec<Vid> = pending.iter().map(|&(v, _)| v).collect();
        for (v, cid) in pending {
            cluster[v.index()] = cid;
            dist[v.index()] = round;
            assigned.set_vid(v);
        }
        w.sync_changed(&mut cluster, &newly);
        w.sync_bitmap(&mut assigned);
        if w.allreduce(newly.len() as u64, |a, b| a + b) == 0 {
            break;
        }
    }
    // Total distance over local masters; unreachable vertices charged one
    // beyond the deepest wavefront.
    let local: u64 = w
        .masters()
        .map(|v| {
            if cluster[v.index()] == NONE {
                u64::from(round) + 1
            } else {
                u64::from(dist[v.index()])
            }
        })
        .sum();
    let total = w.allreduce(local, |a, b| a + b);
    (cluster, total)
}

fn kmeans_body(w: &mut Worker, seed: u64, outer_iters: u32) -> (Vec<u32>, Vec<Vid>, u64) {
    let n = w.graph().num_vertices();
    let c = (n as f64).sqrt().floor().max(1.0) as usize;
    let mut dep = BitDep::new(w.dep_slots_needed());
    let mut best: Option<(Vec<u32>, Vec<Vid>, u64)> = None;
    for t in 0..outer_iters {
        let centers = select_distinct(seed, u64::from(t) + 1, n, c.min(n));
        let (cluster, total) = assign_from_centers(w, &centers, &mut dep);
        if best.as_ref().is_none_or(|(_, _, b)| total < *b) {
            best = Some((cluster, centers, total));
        }
    }
    best.expect("at least one outer iteration")
}

/// Runs distributed graph K-means: `outer_iters` rounds of
/// draw-centers → wavefront-assign → score, keeping the best clustering
/// (the paper uses 20 rounds, §7.1).
///
/// # Example
///
/// ```
/// use symple_algos::{kmeans, validate_kmeans};
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::grid;
///
/// let g = grid(6, 6);
/// let (out, _) = kmeans(&g, &EngineConfig::new(2, Policy::symple()), 3, 2);
/// validate_kmeans(&g, &out);
/// ```
///
/// # Panics
///
/// Panics if `outer_iters == 0` or the graph is empty.
pub fn kmeans(
    graph: &Graph,
    cfg: &EngineConfig,
    seed: u64,
    outer_iters: u32,
) -> (KmeansOutput, RunStats) {
    assert!(outer_iters > 0, "need at least one outer iteration");
    assert!(graph.num_vertices() > 0, "graph must be non-empty");
    let mut res = run_spmd(graph, cfg, |w| kmeans_body(w, seed, outer_iters));
    let (cluster, centers, total_distance) = res.outputs.swap_remove(0);
    (
        KmeansOutput {
            cluster,
            centers,
            total_distance,
        },
        res.stats,
    )
}

/// Validates a K-means output structurally:
/// * centers are assigned to themselves;
/// * every assigned vertex is a center or has an in-neighbour in the same
///   cluster (wavefront witness);
/// * every unassigned vertex has no assigned in-neighbour (fixpoint).
///
/// # Panics
///
/// Panics describing the first violated invariant.
pub fn validate_kmeans(graph: &Graph, out: &KmeansOutput) {
    for (idx, &c) in out.centers.iter().enumerate() {
        assert_eq!(out.cluster[c.index()], idx as u32, "center {c} mislabeled");
    }
    let center_set: std::collections::HashSet<Vid> = out.centers.iter().copied().collect();
    for v in graph.vertices() {
        let cid = out.cluster[v.index()];
        if cid == NONE {
            for &u in graph.in_neighbors(v) {
                assert_eq!(
                    out.cluster[u.index()],
                    NONE,
                    "unassigned {v} has assigned in-neighbour {u}"
                );
            }
        } else {
            assert!(
                (cid as usize) < out.centers.len(),
                "cluster id {cid} out of range at {v}"
            );
            if !center_set.contains(&v) {
                let witness = graph
                    .in_neighbors(v)
                    .iter()
                    .any(|&u| out.cluster[u.index()] == cid);
                assert!(
                    witness,
                    "{v} in cluster {cid} without a same-cluster in-neighbour"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{grid, path, RmatConfig};

    fn check_all_policies(graph: &Graph, machines: usize, seed: u64) {
        let mut outputs = Vec::new();
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::Gemini,
            Policy::Galois,
        ] {
            let cfg = EngineConfig::new(machines, policy);
            let (out, _) = kmeans(graph, &cfg, seed, 3);
            validate_kmeans(graph, &out);
            outputs.push(out);
        }
        // all policies pick the same centers and the same best score
        for o in &outputs[1..] {
            assert_eq!(o.centers, outputs[0].centers);
            assert_eq!(o.total_distance, outputs[0].total_distance);
        }
    }

    #[test]
    fn grid_clustering() {
        check_all_policies(&grid(9, 8), 3, 1);
    }

    #[test]
    fn path_clustering() {
        check_all_policies(&path(120), 4, 2);
    }

    #[test]
    fn rmat_clustering() {
        let g = RmatConfig::graph500(8, 8).cleaned(true).generate();
        check_all_policies(&g, 4, 5);
    }

    #[test]
    fn centers_cover_all_on_connected_graph() {
        let g = grid(10, 10);
        let (out, _) = kmeans(&g, &EngineConfig::new(2, Policy::symple()), 7, 2);
        assert_eq!(out.assigned(), 100, "grid is connected: everyone assigned");
    }

    #[test]
    fn symple_skips_on_dense_graph() {
        let g = RmatConfig::graph500(9, 16).cleaned(true).generate();
        let (_, st_g) = kmeans(&g, &EngineConfig::new(4, Policy::Gemini), 3, 2);
        let (_, st_s) = kmeans(&g, &EngineConfig::new(4, Policy::symple()), 3, 2);
        assert!(st_s.work.edges_traversed() < st_g.work.edges_traversed());
    }

    #[test]
    #[should_panic(expected = "at least one outer iteration")]
    fn zero_iters_rejected() {
        let g = path(4);
        let _ = kmeans(&g, &EngineConfig::new(1, Policy::Gemini), 1, 0);
    }
}
