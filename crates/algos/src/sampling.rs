//! Weighted neighbour sampling (paper §2.1, Figure 3d).
//!
//! Each vertex samples one in-neighbour with probability proportional to
//! the neighbour's weight: draw `r ∈ [0, Σw)` and take the first neighbour
//! whose running prefix sum reaches `r`. The prefix sum is *data*
//! loop-carried dependency — it must travel between machines
//! ([`symple_core::WeightDep`]: an `f32` accumulator plus a selected bit
//! per vertex), which is why sampling is the one workload where
//! SympleGraph's dependency traffic is substantial (Table 6).
//!
//! The prefix-sum scan cannot be decomposed into constant-size commutative
//! partials, so whenever the dependency state does **not** travel — the
//! Gemini/D-Galois baselines, and the low-degree fallback of
//! differentiated propagation (§5.2) — the signal switches to the standard
//! *weighted reservoir* formulation (Efraimidis–Spirakis max-key: one
//! partial per machine), which samples the same marginal distribution but
//! must examine **every** edge of the segment. This reproduces the
//! paper's Table 5 contrast: the baselines scan ≈ all edges while
//! SympleGraph scans a fraction.

use crate::common::{sampling_threshold, total_in_weights, uniform01, vertex_weight};
use symple_core::{
    run_spmd, EngineConfig, PullProgram, RunStats, SignalOutcome, WeightDep, Worker,
};
use symple_graph::{Graph, Vid};

/// Marker for "no selection" (vertex has no in-neighbours).
pub const NONE: u32 = u32::MAX;

/// Key value that marks a prefix-sum (exact) selection: it dominates every
/// reservoir key, and at most one machine emits it per vertex (the
/// dependency's selected bit silences the rest).
const PREFIX_KEY: f32 = f32::MAX;

/// Result of a sampling pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplingOutput {
    /// Selected in-neighbour per vertex (`NONE` if it has none).
    pub selected: Vec<u32>,
}

impl SamplingOutput {
    /// Number of vertices with a selection.
    pub fn count(&self) -> usize {
        self.selected.iter().filter(|&&s| s != NONE).count()
    }
}

/// Sampling signal UDF. On the dependency-carried path this is Figure 3d's
/// prefix-sum scan with an early break; on scratch paths it degrades to
/// the reservoir formulation (see module docs).
pub struct SamplingPull<'a> {
    /// Per-vertex selection thresholds `r`.
    pub thresholds: &'a [f32],
    /// RNG seed (weights and reservoir keys are hash-derived).
    pub seed: u64,
}

impl PullProgram for SamplingPull<'_> {
    type Update = (f32, Vid);
    type Dep = WeightDep;

    fn dense_active(&self, _v: Vid) -> bool {
        true // every vertex with in-edges samples once
    }

    fn signal(
        &self,
        v: Vid,
        srcs: &[Vid],
        dep: &mut WeightDep,
        slot: usize,
        carried: bool,
        emit: &mut dyn FnMut((f32, Vid)),
    ) -> SignalOutcome {
        if carried {
            let r = self.thresholds[v.index()];
            for (i, &u) in srcs.iter().enumerate() {
                let acc = dep.add_weight(slot, vertex_weight(self.seed, u));
                if acc >= r {
                    emit((PREFIX_KEY, u));
                    dep.select(slot);
                    return SignalOutcome::broke_after(i as u64 + 1);
                }
            }
            SignalOutcome::scanned(srcs.len() as u64)
        } else {
            let mut best_key = f32::NEG_INFINITY;
            let mut best: Option<Vid> = None;
            for &u in srcs {
                // Efraimidis–Spirakis: key = U^(1/w); max key wins.
                let u01 = uniform01(
                    self.seed,
                    0x5e5e,
                    (u64::from(v.raw()) << 32) | u64::from(u.raw()),
                );
                let key = u01.powf(1.0 / f64::from(vertex_weight(self.seed, u))) as f32;
                if key > best_key {
                    best_key = key;
                    best = Some(u);
                }
            }
            if let Some(u) = best {
                emit((best_key, u));
            }
            SignalOutcome::scanned(srcs.len() as u64)
        }
    }
}

fn sampling_body(w: &mut Worker, seed: u64, thresholds: &[f32]) -> Vec<u32> {
    let graph = w.graph();
    let n = graph.num_vertices();
    let mut selected = vec![NONE; n];
    let mut best_key = vec![f32::NEG_INFINITY; n];
    let mut dep = WeightDep::new(w.dep_slots_needed());
    {
        let prog = SamplingPull { thresholds, seed };
        let mut apply = |v: Vid, (key, u): (f32, Vid)| -> bool {
            // Exact prefix picks (PREFIX_KEY) dominate reservoir partials;
            // among reservoir partials the maximum key wins. At most one
            // PREFIX_KEY arrives per vertex, and the circulant apply order
            // makes the fold deterministic.
            if key > best_key[v.index()] {
                best_key[v.index()] = key;
                selected[v.index()] = u.raw();
                true
            } else {
                false
            }
        };
        w.pull(&prog, &mut dep, &mut apply);
    }
    // Floating-point tail guard: a master whose prefix never reached `r`
    // (rounding) falls back to its last in-neighbour.
    for v in w.masters() {
        if selected[v.index()] == NONE && graph.in_degree(v) > 0 {
            selected[v.index()] = graph.in_neighbors(v).last().unwrap().raw();
        }
    }
    w.sync_values(&mut selected);
    selected
}

/// Runs one distributed weighted-sampling pass. Under SympleGraph policies
/// the high-degree path runs the prefix-sum scan with dependency
/// propagation; everything else (Gemini, Galois, low-degree fallback) runs
/// the reservoir formulation — see module docs.
///
/// # Example
///
/// ```
/// use symple_algos::{sampling, validate_sampling};
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::star;
///
/// let g = star(50);
/// let (out, _) = sampling(&g, &EngineConfig::new(2, Policy::symple()), 9);
/// validate_sampling(&g, &out);
/// ```
pub fn sampling(graph: &Graph, cfg: &EngineConfig, seed: u64) -> (SamplingOutput, RunStats) {
    let totals = total_in_weights(graph, seed);
    let thresholds: Vec<f32> = graph
        .vertices()
        .map(|v| sampling_threshold(seed, v, totals[v.index()]))
        .collect();
    let mut res = run_spmd(graph, cfg, |w| sampling_body(w, seed, &thresholds));
    let selected = res.outputs.swap_remove(0);
    (SamplingOutput { selected }, res.stats)
}

/// Single-threaded reference: the prefix-sum scan over in-neighbours in
/// ascending id order. With one machine and full dependency (no
/// low-degree fallback) the distributed prefix formulation must match it
/// exactly. Returns the output and edges examined.
pub fn sampling_reference(graph: &Graph, seed: u64) -> (SamplingOutput, u64) {
    let totals = total_in_weights(graph, seed);
    let n = graph.num_vertices();
    let mut selected = vec![NONE; n];
    let mut edges = 0u64;
    for v in graph.vertices() {
        let nbrs = graph.in_neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let r = sampling_threshold(seed, v, totals[v.index()]);
        let mut acc = 0.0f32;
        for &u in nbrs {
            edges += 1;
            acc += vertex_weight(seed, u);
            if acc >= r {
                selected[v.index()] = u.raw();
                break;
            }
        }
        if selected[v.index()] == NONE {
            selected[v.index()] = nbrs.last().unwrap().raw();
        }
    }
    (SamplingOutput { selected }, edges)
}

/// Validates a sampling output: every vertex with in-edges selected one of
/// its in-neighbours; vertices without in-edges selected nothing.
///
/// # Panics
///
/// Panics describing the first violated invariant.
pub fn validate_sampling(graph: &Graph, out: &SamplingOutput) {
    for v in graph.vertices() {
        let s = out.selected[v.index()];
        if graph.in_degree(v) == 0 {
            assert_eq!(s, NONE, "{v} has no in-edges but selected {s}");
        } else {
            assert_ne!(s, NONE, "{v} has in-edges but no selection");
            assert!(
                graph.in_neighbors(v).contains(&Vid::new(s)),
                "{v} selected non-neighbour {s}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{star, RmatConfig};

    #[test]
    fn all_policies_produce_valid_samples() {
        let g = RmatConfig::graph500(8, 8).generate();
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::Gemini,
            Policy::Galois,
        ] {
            let (out, _) = sampling(&g, &EngineConfig::new(4, policy), 3);
            validate_sampling(&g, &out);
        }
    }

    #[test]
    fn single_machine_full_dep_matches_reference() {
        let g = RmatConfig::graph500(8, 6).generate();
        let (reference, _) = sampling_reference(&g, 5);
        // symple_basic: full dependency layout (no low-degree fallback)
        let (out, _) = sampling(&g, &EngineConfig::new(1, Policy::symple_basic()), 5);
        assert_eq!(out, reference);
    }

    #[test]
    fn multi_machine_full_dep_matches_reference() {
        // With full dependency propagation, the prefix scan follows the
        // circulant segment order; with a single partition owning all
        // in-edges per vertex... use 2 machines and verify structural
        // validity plus exact match (circulant order = machine 1's
        // segment first for partition 0? No — reference is ascending-id;
        // only p=1 matches exactly). Here we check validity only.
        let g = RmatConfig::graph500(8, 6).generate();
        let (out, _) = sampling(&g, &EngineConfig::new(3, Policy::symple_basic()), 5);
        validate_sampling(&g, &out);
    }

    #[test]
    fn prefix_form_traverses_fewer_edges_than_reservoir() {
        let g = RmatConfig::graph500(9, 16).generate();
        let (_, st_g) = sampling(&g, &EngineConfig::new(4, Policy::Gemini), 7);
        // reservoir scans everything
        assert_eq!(st_g.work.edges_traversed(), g.num_edges() as u64);
        // full dependency propagation: expected prefix position ≈ half of
        // each neighbour list
        let (_, st_b) = sampling(&g, &EngineConfig::new(4, Policy::symple_basic()), 7);
        assert!(
            st_b.work.edges_traversed() < g.num_edges() as u64 * 7 / 10,
            "full-dep prefix scan too large: {} of {}",
            st_b.work.edges_traversed(),
            g.num_edges()
        );
        // differentiated propagation falls back to reservoir for
        // low-degree vertices, so it sits between the two
        let (_, st_s) = sampling(&g, &EngineConfig::new(4, Policy::symple()), 7);
        assert!(st_s.work.edges_traversed() < st_g.work.edges_traversed());
        assert!(st_s.work.edges_traversed() >= st_b.work.edges_traversed());
    }

    /// Over many seeds, the fraction of picks that land on
    /// "heavier-than-mean" in-neighbours of the hub must track the
    /// aggregate weight mass of those neighbours.
    #[test]
    fn sampling_frequencies_track_weights() {
        let g = star(40); // hub (vertex 0) has 39 in-neighbours
        let hub = Vid::new(0);
        let trials = 120u64;
        let mut expect_frac = 0.0f64;
        let mut actual_heavy = 0u32;
        for seed in 0..trials {
            let ws: Vec<(Vid, f64)> = g
                .in_neighbors(hub)
                .iter()
                .map(|&u| (u, f64::from(vertex_weight(seed, u))))
                .collect();
            let sum: f64 = ws.iter().map(|(_, w)| w).sum();
            let mean = sum / ws.len() as f64;
            let heavy_mass: f64 = ws.iter().filter(|(_, w)| *w > mean).map(|(_, w)| w).sum();
            expect_frac += heavy_mass / sum;
            let (out, _) = sampling(&g, &EngineConfig::new(3, Policy::symple()), seed);
            validate_sampling(&g, &out);
            let pick = Vid::new(out.selected[hub.index()]);
            let w = ws.iter().find(|(u, _)| *u == pick).unwrap().1;
            if w > mean {
                actual_heavy += 1;
            }
        }
        let expect_frac = expect_frac / trials as f64;
        let actual_frac = f64::from(actual_heavy) / trials as f64;
        assert!(
            (actual_frac - expect_frac).abs() < 0.12,
            "heavy-pick fraction {actual_frac:.3} vs expected {expect_frac:.3}"
        );
    }

    #[test]
    fn no_in_edges_no_selection() {
        // directed star: edges 0 -> leaves; vertex 0 has no in-edges
        let mut b = symple_graph::GraphBuilder::new(5);
        for i in 1..5 {
            b.add_edge(Vid::new(0), Vid::new(i));
        }
        let g = b.build();
        let (out, _) = sampling(&g, &EngineConfig::new(2, Policy::symple()), 1);
        assert_eq!(out.selected[0], NONE);
        validate_sampling(&g, &out);
    }
}
