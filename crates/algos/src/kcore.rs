//! K-core (paper §2.1, Figure 3b).
//!
//! Iteratively remove vertices with fewer than `k` active neighbours until
//! none remain; the survivors are the (unique) k-core. The signal UDF
//! counts active neighbours and **breaks once the count reaches `k`** —
//! a *data + control* loop-carried dependency: the partial count itself
//! must travel with the dependency message ([`symple_core::CountDep`]).
//!
//! Expects a symmetrized graph (see crate docs).

use symple_core::{run_spmd, CountDep, EngineConfig, PullProgram, RunStats, SignalOutcome, Worker};
use symple_graph::{Bitmap, Graph, Vid};

/// Result of a K-core run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KcoreOutput {
    /// Vertices in the k-core.
    pub in_core: Bitmap,
    /// Peeling rounds until fixpoint.
    pub rounds: u32,
}

impl KcoreOutput {
    /// Number of vertices in the core.
    pub fn len(&self) -> usize {
        self.in_core.count_ones()
    }

    /// Returns `true` if the k-core is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Signal UDF (Figure 3b): count active neighbours into the carried
/// counter; once it reaches `k`, emit the local delta and break. If the
/// segment ends below `k`, emit whatever was counted locally.
pub struct KcorePull<'a> {
    /// Vertices still in the candidate core.
    pub active: &'a Bitmap,
}

impl PullProgram for KcorePull<'_> {
    type Update = u16;
    type Dep = CountDep;

    fn dense_active(&self, v: Vid) -> bool {
        self.active.get_vid(v)
    }

    fn signal(
        &self,
        _v: Vid,
        srcs: &[Vid],
        dep: &mut CountDep,
        slot: usize,
        _carried: bool,
        emit: &mut dyn FnMut(u16),
    ) -> SignalOutcome {
        let k = dep.k();
        let mut local: u16 = 0;
        for (i, &u) in srcs.iter().enumerate() {
            if self.active.get_vid(u) {
                local += 1;
                if dep.increment(slot) >= k {
                    emit(local);
                    return SignalOutcome::broke_after(i as u64 + 1);
                }
            }
        }
        if local > 0 {
            emit(local);
        }
        SignalOutcome::scanned(srcs.len() as u64)
    }
}

fn kcore_body(w: &mut Worker, k: u32) -> (Bitmap, u32) {
    let graph = w.graph();
    let n = graph.num_vertices();
    let mut active = Bitmap::new(n);
    active.set_all();
    let mut counts = vec![0u32; n];
    let k8 = u8::try_from(k.min(255)).expect("k fits u8 after clamp");
    let mut dep = CountDep::new(w.dep_slots_needed(), k8.max(1));
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        for c in counts.iter_mut() {
            *c = 0;
        }
        {
            let prog = KcorePull { active: &active };
            let mut apply = |v: Vid, delta: u16| -> bool {
                counts[v.index()] += u32::from(delta);
                false
            };
            w.pull(&prog, &mut dep, &mut apply);
        }
        let mut removed = 0u64;
        for v in w.masters() {
            if active.get_vid(v) && counts[v.index()] < k {
                active.clear(v.index());
                removed += 1;
            }
        }
        w.sync_bitmap(&mut active);
        if w.allreduce(removed, |a, b| a + b) == 0 {
            break;
        }
    }
    (active, rounds)
}

/// Runs distributed K-core decomposition for the given `k`.
///
/// # Example
///
/// ```
/// use symple_algos::{kcore, validate_kcore};
/// use symple_core::{EngineConfig, Policy};
/// use symple_graph::complete;
///
/// let g = complete(10); // 9-regular: the 9-core is everything
/// let (out, _) = kcore(&g, &EngineConfig::new(2, Policy::symple()), 9);
/// assert_eq!(out.len(), 10);
/// validate_kcore(&g, 9, &out);
/// ```
///
/// # Panics
///
/// Panics if `k == 0` or `k > 255` (the paper evaluates k ≤ 64; dependency
/// counters are one byte on the wire).
pub fn kcore(graph: &Graph, cfg: &EngineConfig, k: u32) -> (KcoreOutput, RunStats) {
    assert!(k > 0, "k must be positive");
    assert!(k <= 255, "k must fit the one-byte dependency counter");
    let mut res = run_spmd(graph, cfg, |w| kcore_body(w, k));
    let (in_core, rounds) = res.outputs.swap_remove(0);
    (KcoreOutput { in_core, rounds }, res.stats)
}

/// Single-threaded reference: straightforward iterative peeling.
/// Returns the core bitmap and the number of edges examined.
pub fn kcore_reference(graph: &Graph, k: u32) -> (Bitmap, u64) {
    let n = graph.num_vertices();
    let mut active = Bitmap::new(n);
    active.set_all();
    let mut edges = 0u64;
    loop {
        let mut removed = false;
        for v in graph.vertices() {
            if !active.get_vid(v) {
                continue;
            }
            let mut cnt = 0u32;
            for &u in graph.in_neighbors(v) {
                edges += 1;
                if active.get_vid(u) {
                    cnt += 1;
                    if cnt >= k {
                        break;
                    }
                }
            }
            if cnt < k {
                active.clear(v.index());
                removed = true;
            }
        }
        if !removed {
            return (active, edges);
        }
    }
}

/// Validates a k-core output: every member has ≥ k member neighbours, and
/// the set equals the unique k-core computed by the reference.
///
/// # Panics
///
/// Panics describing the first violated invariant.
pub fn validate_kcore(graph: &Graph, k: u32, out: &KcoreOutput) {
    for v in graph.vertices() {
        if out.in_core.get_vid(v) {
            let deg = graph
                .in_neighbors(v)
                .iter()
                .filter(|&&u| out.in_core.get_vid(u))
                .count() as u32;
            assert!(deg >= k, "{v} in core with only {deg} core neighbours");
        }
    }
    let (reference, _) = kcore_reference(graph, k);
    for v in graph.vertices() {
        assert_eq!(
            out.in_core.get_vid(v),
            reference.get_vid(v),
            "core membership of {v} differs from reference"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symple_core::Policy;
    use symple_graph::{complete, cycle, path, star, RmatConfig};

    fn check_all_policies(graph: &Graph, machines: usize, k: u32) {
        for policy in [
            Policy::symple(),
            Policy::symple_basic(),
            Policy::Gemini,
            Policy::Galois,
        ] {
            let cfg = EngineConfig::new(machines, policy);
            let (out, _) = kcore(graph, &cfg, k);
            validate_kcore(graph, k, &out);
        }
    }

    #[test]
    fn path_has_no_2core() {
        let g = path(100);
        let (out, _) = kcore(&g, &EngineConfig::new(3, Policy::symple()), 2);
        assert!(out.is_empty(), "a path unravels completely at k=2");
        validate_kcore(&g, 2, &out);
    }

    #[test]
    fn cycle_is_its_own_2core() {
        let g = cycle(80);
        check_all_policies(&g, 3, 2);
        let (out, _) = kcore(&g, &EngineConfig::new(3, Policy::symple()), 2);
        assert_eq!(out.len(), 80);
    }

    #[test]
    fn star_1core_vs_2core() {
        let g = star(150);
        check_all_policies(&g, 4, 1);
        let (out, _) = kcore(&g, &EngineConfig::new(4, Policy::symple()), 2);
        assert!(out.is_empty());
    }

    #[test]
    fn complete_graph_cores() {
        let g = complete(12);
        check_all_policies(&g, 2, 11);
        let (out, _) = kcore(&g, &EngineConfig::new(2, Policy::symple()), 12);
        assert!(out.is_empty());
    }

    #[test]
    fn rmat_various_k() {
        let g = RmatConfig::graph500(8, 8).cleaned(true).generate();
        for k in [2, 4, 8] {
            check_all_policies(&g, 4, k);
        }
    }

    #[test]
    fn symple_matches_gemini_with_fewer_edges() {
        let g = RmatConfig::graph500(9, 16).cleaned(true).generate();
        let (out_g, st_g) = kcore(&g, &EngineConfig::new(4, Policy::Gemini), 8);
        let (out_s, st_s) = kcore(&g, &EngineConfig::new(4, Policy::symple()), 8);
        assert_eq!(out_g.in_core, out_s.in_core);
        assert!(st_s.work.edges_traversed() < st_g.work.edges_traversed());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let g = path(4);
        let _ = kcore(&g, &EngineConfig::new(1, Policy::Gemini), 0);
    }
}
