#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repository root.
#
#   ./ci.sh            # build, test, fmt, clippy
#   ./ci.sh --quick    # skip the release build
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== build (release) =="
if [ "$QUICK" = 0 ]; then
  cargo build --release --offline --workspace
fi

echo "== tests (workspace) =="
cargo test -q --offline --workspace

echo "== backend equivalence gate (sim vs thread transport) =="
# Bit-identical outputs, work, CommStats, and virtual time across the
# deterministic simulator and the OS-thread backend, for the algorithm
# suite and a proptest over random graphs. Runs under --quick so the
# GitHub workflow enforces it on every push.
cargo test -q --offline --test backend_equivalence

if [ "$QUICK" = 0 ]; then
  echo "== thread-transport smoke (modelled vs measured wall) =="
  # Runs the transport study (BFS / K-core / MIS on both backends; the
  # study asserts logical bit-identity) and writes a throwaway grid.
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --transport-json BENCH_transport_smoke.json
  rm -f BENCH_transport_smoke.json
  echo "== executor regression guard (vs committed BENCH_scaling.json) =="
  # Re-runs the scaling sweep at the baseline's scale/thread counts (best
  # of three per cell) and fails if any cell's bytecode/interp wall ratio
  # regressed by more than 10%. Outputs and virtual time are asserted
  # bit-identical across executors inside the sweep itself.
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --scaling-check BENCH_scaling.json

  echo "== wire-codec regression guard (vs committed BENCH_comm.json) =="
  # Re-runs the byte study at the baseline's graph/machine count and fails
  # if any adaptive/flat data ratio regressed by more than 10%.
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --comm-check BENCH_comm.json

  echo "== pipeline overlap regression guard (vs committed BENCH_pipeline.json) =="
  # Re-runs the pipelined-exchange study at the baseline's graph/machine
  # counts and fails if any cell's overlap ratio (exchange stall / bulk
  # send stall, deterministic modelled quantities) regressed by more
  # than 10%.
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --pipeline-check BENCH_pipeline.json

  echo "== fault-injection smoke (chaos plan, outputs bit-identical) =="
  # BFS / K-core / MIS on s27, 4 machines, under a seeded drop+dup+delay+
  # reorder plan; the sweep itself asserts outputs, work counters, and
  # logical traffic match the fault-free run bit for bit.
  cargo run --release --offline -p symple-bench --bin experiments -- --faults
fi

echo "== exchange-mode equivalence smoke (bulk vs pipelined) =="
# BFS / K-core / MIS on s27, 4 machines, under both exchange modes and
# both transport backends; the study asserts work, comm, and the stall
# ordering (exchange stall never above the bulk send stall) bit for
# bit. Runs under --quick so every push enforces that the pipelined
# default stays invisible to the computation.
cargo run --offline -p symple-bench --bin experiments -- --pipeline-smoke

echo "== executor equivalence smoke (interp vs bytecode, full engine) =="
# One kernel through the engine under both executors; outputs, work,
# comm counters, and modelled time must match bit for bit. Runs under
# --quick so every push enforces the compile-don't-interpret contract.
cargo run --offline -p symple-bench --bin experiments -- --exec-smoke

echo "== symple-lint (paper UDFs + example corpus) =="
# Lints the five paper kernels (pretty-printed to source so spans exercise
# the full parser path); exits nonzero on any error-severity diagnostic.
cargo run --offline --example symple_lint

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
