#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repository root.
#
#   ./ci.sh            # build, test, fmt, clippy
#   ./ci.sh --quick    # skip the release build
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== build (release) =="
if [ "$QUICK" = 0 ]; then
  cargo build --release --offline --workspace
fi

echo "== tests (workspace) =="
cargo test -q --offline --workspace

if [ "$QUICK" = 0 ]; then
  echo "== executor smoke (threads=4) =="
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --threads 1,4 --scale 13 --scaling-json BENCH_scaling_smoke.json
  rm -f BENCH_scaling_smoke.json

  echo "== wire-codec smoke (flat vs adaptive) =="
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --comm-json BENCH_comm_smoke.json --comm-graph s27 --comm-machines 4
  rm -f BENCH_comm_smoke.json
fi

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
