#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repository root.
#
#   ./ci.sh            # build, test, smokes, matrix gate, fmt, clippy
#   ./ci.sh --quick    # skip the release build and the full perf gate
#   ./ci.sh --help     # this text
#
# Performance regressions are caught by ONE consolidated guard: the
# scenario matrix (`--matrix-check` against the committed
# BENCH_matrix.json), which replays every {algo x graph x policy x
# codec x exchange x threads x faults} cell and fails on any >10%
# regression in virtual seconds or data bytes. The old per-feature
# scaling/comm/pipeline checks are subsumed by it (their baselines stay
# committed for the docs and can still be replayed by hand via the
# experiments CLI).
set -euo pipefail
cd "$(dirname "$0")"

usage() {
  sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
  exit "${1:-2}"
}

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --help|-h) usage 0 ;;
    *) echo "ci.sh: unknown flag \`$arg\`" >&2; usage 2 ;;
  esac
done

# Per-step timing: `step NAME` closes the previous step with its elapsed
# seconds and opens the next one.
STEP_NAME=""
STEP_START=$SECONDS
step() {
  if [ -n "$STEP_NAME" ]; then
    echo "-- ${STEP_NAME}: $((SECONDS - STEP_START))s"
  fi
  STEP_NAME="$1"
  STEP_START=$SECONDS
  echo "== $1 =="
}

step "build (release)"
if [ "$QUICK" = 0 ]; then
  cargo build --release --offline --workspace
fi

step "tests (workspace)"
cargo test -q --offline --workspace

step "backend equivalence gate (sim vs thread transport)"
# Bit-identical outputs, work, CommStats, and virtual time across the
# deterministic simulator and the OS-thread backend, for the algorithm
# suite and a proptest over random graphs. Runs under --quick so the
# GitHub workflow enforces it on every push.
cargo test -q --offline --test backend_equivalence

if [ "$QUICK" = 0 ]; then
  step "thread-transport smoke (modelled vs measured wall)"
  # Runs the transport study (BFS / K-core / MIS on both backends; the
  # study asserts logical bit-identity) and writes a throwaway grid to a
  # temp dir so the repo root stays clean.
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --transport-json "$SMOKE_DIR/BENCH_transport_smoke.json"

  step "scenario-matrix regression gate (vs committed BENCH_matrix.json)"
  # THE consolidated perf gate: replays every cell of the committed
  # matrix baseline (all algorithms x graphs x policies x codec/exchange/
  # thread/fault variants) and fails if any cell's virtual seconds or
  # data bytes regressed by more than 10%. Output fingerprints, edge
  # counts, and logical bytes are asserted bit-identical across cells
  # inside the sweep itself.
  cargo run --release --offline -p symple-bench --bin experiments -- \
    --matrix-check BENCH_matrix.json

  step "fault-injection smoke (chaos plan, outputs bit-identical)"
  # BFS / K-core / MIS on s27, 4 machines, under a seeded drop+dup+delay+
  # reorder plan; the sweep itself asserts outputs, work counters, and
  # logical traffic match the fault-free run bit for bit.
  cargo run --release --offline -p symple-bench --bin experiments -- --faults
fi

step "scenario-matrix smoke (SNAP karate, all knobs)"
# The matrix restricted to the real SNAP-loaded karate graph: every
# workload (BFS, K-core, SSSP, CC, PageRank), both policies, and all
# four knob variants, with the cross-cell bit-identity invariants
# asserted inline. Runs under --quick so every push exercises the SNAP
# loader and the new kernels end to end.
cargo run --offline -p symple-bench --bin experiments -- --matrix-smoke

step "exchange-mode equivalence smoke (bulk vs pipelined)"
# BFS / K-core / MIS on s27, 4 machines, under both exchange modes and
# both transport backends; the study asserts work, comm, and the stall
# ordering (exchange stall never above the bulk send stall) bit for
# bit. Runs under --quick so every push enforces that the pipelined
# default stays invisible to the computation.
cargo run --offline -p symple-bench --bin experiments -- --pipeline-smoke

step "executor equivalence smoke (interp vs bytecode, full engine)"
# One kernel through the engine under both executors; outputs, work,
# comm counters, and modelled time must match bit for bit. Runs under
# --quick so every push enforces the compile-don't-interpret contract.
cargo run --offline -p symple-bench --bin experiments -- --exec-smoke

step "symple-lint (paper UDFs + scenario-matrix UDFs)"
# Lints the five paper kernels plus the SSSP/CC/PageRank matrix kernels
# (pretty-printed to source so spans exercise the full parser path);
# exits nonzero on any error-severity diagnostic.
cargo run --offline --example symple_lint
# The corpus legitimately warns (kcore W004, sampling W005/W008, cc
# W007, ...), so the strict gate must trip on it — an inverted probe
# that the --deny-warnings plumbing actually gates.
if cargo run --offline --example symple_lint -- --deny-warnings >/dev/null 2>&1; then
  echo "ci.sh: symple-lint --deny-warnings failed to gate a warning corpus" >&2
  exit 1
fi
# And --explain must know every code the lint table documents.
for code in E000 E001 E002 E003 E004 E005 E006 E007 \
            W001 W002 W003 W004 W005 W006 W007 W008; do
  cargo run --offline --example symple_lint -- --explain "$code" >/dev/null
done

step "rustfmt"
cargo fmt --check

step "clippy"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "done"
echo "ci.sh: all checks passed"
