//! # SympleGraph (reproduction)
//!
//! A from-scratch Rust reproduction of *"SympleGraph: Distributed Graph
//! Processing with Precise Loop-Carried Dependency Guarantee"* (PLDI
//! 2020): a distributed graph-processing framework that analyzes vertex
//! UDFs for loop-carried dependency (`break` inside the neighbour loop)
//! and enforces it *precisely* across machines via dependency
//! propagation under circulant scheduling — eliminating the redundant
//! computation and communication that Gemini-style frameworks pay.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — CSR graphs, bitmaps, generators (R-MAT et al.);
//! * [`net`] — the simulated cluster with virtual-time cost models;
//! * [`udf`] — the UDF language, dependency analyzer, instrumentation,
//!   and interpreter (the paper's compiler half);
//! * [`core`] — the distributed engine: circulant scheduling, dependency
//!   propagation, differentiated propagation, double buffering, plus the
//!   Gemini and D-Galois-style baselines;
//! * [`algos`] — the five evaluated algorithms with references and
//!   validators;
//! * [`trace`] — the always-on observability layer: categorized
//!   virtual-time spans and byte counters, chrome://tracing export, and
//!   the structured metrics report (see `RunStats::trace` /
//!   `RunStats::metrics`).
//!
//! # Quickstart
//!
//! ```
//! use symplegraph::algos::{bfs, validate_bfs};
//! use symplegraph::core::{EngineConfig, Policy};
//! use symplegraph::graph::{RmatConfig, Vid};
//!
//! // A scale-10 R-MAT graph on a simulated 4-machine cluster.
//! let g = RmatConfig::graph500(10, 8).cleaned(true).generate();
//! let cfg = EngineConfig::new(4, Policy::symple());
//! let (out, stats) = bfs(&g, &cfg, Vid::new(0));
//! validate_bfs(&g, Vid::new(0), &out);
//! println!(
//!     "reached {} vertices, traversed {} edges, modelled {:.3} ms",
//!     out.reached(),
//!     stats.work.edges_traversed(),
//!     stats.virtual_time() * 1e3,
//! );
//! ```

#![forbid(unsafe_code)]

pub use symple_algos as algos;
pub use symple_core as core;
pub use symple_graph as graph;
pub use symple_net as net;
pub use symple_trace as trace;
pub use symple_udf as udf;
