//! Generation-only stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched from the registry. This shim implements exactly the
//! API surface the workspace's property tests use — the `proptest!` macro,
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`
//! / `prop_recursive`, `prop_oneof!`, `Just`, `any`, range / tuple /
//! pattern strategies, and `proptest::collection::vec` — backed by a
//! deterministic SplitMix64 generator.
//!
//! It deliberately does **not** implement shrinking, failure persistence,
//! or `prop_assume`; a failing case simply panics with the generated
//! values' assertion message. Each test function derives its RNG stream
//! from its own name plus the case index, so runs are reproducible.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded with `seed` (pre-advanced once so a zero
    /// seed is not a fixed point).
    pub fn new(seed: u64) -> Self {
        let mut rng = TestRng { state: seed };
        rng.next_u64();
        rng
    }

    /// Seeds a generator for test `name`, case number `case`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }
}

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a pure
/// function from an RNG to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<U, F>(self, func: F) -> Map<Self, F, U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            func,
            _marker: std::marker::PhantomData,
        }
    }

    /// Generates a value, then generates from the strategy `func` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, func: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            func,
            _marker: std::marker::PhantomData,
        }
    }

    /// Rejects generated values failing `pred`, retrying with fresh draws.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a deeper one, nested at most `depth`
    /// times. `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility but only bias the leaf/recurse coin.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for level in 0..depth {
            let rec = recurse(current).boxed();
            let leaf = leaf.clone();
            // Bias toward leaves as nesting deepens so generated trees
            // stay small.
            let leaf_weight = 1 + level as u64;
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.gen_below(leaf_weight + 1) == 0 {
                    rec.generate(rng)
                } else {
                    leaf.generate(rng)
                }
            }));
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F, U> {
    source: S,
    func: F,
    _marker: std::marker::PhantomData<fn() -> U>,
}

impl<S: Clone, F: Clone, U> Clone for Map<S, F, U> {
    fn clone(&self) -> Self {
        Map {
            source: self.source.clone(),
            func: self.func.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F, U> Strategy for Map<S, F, U>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.func)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, S2> {
    source: S,
    func: F,
    _marker: std::marker::PhantomData<fn() -> S2>,
}

impl<S: Clone, F: Clone, S2> Clone for FlatMap<S, F, S2> {
    fn clone(&self) -> Self {
        FlatMap {
            source: self.source.clone(),
            func: self.func.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F, S2> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let inner = (self.func)(self.source.generate(rng));
        inner.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Uniform choice between type-erased arms; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Union<V> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.arms[rng.gen_index(self.arms.len())].generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Floats are drawn finite (magnitude-varied, both signs) rather than from
// raw bit patterns: the tests round-trip floats through wire encoding and
// compare with `==`, which NaN would spuriously fail.
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa = rng.gen_f64() * 2.0 - 1.0;
        let exponent = rng.gen_index(121) as i32 - 60;
        mantissa * 2f64.powi(exponent)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        let mantissa = rng.gen_f64() * 2.0 - 1.0;
        let exponent = rng.gen_index(61) as i32 - 30;
        (mantissa * 2f64.powi(exponent)) as f32
    }
}

/// The canonical strategy for `T` ([`Arbitrary`] types only).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.gen_below(width);
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.gen_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// `&str` strategies: a small regex-like pattern language covering the
/// forms the workspace uses (literals, `[a-z0-9_]`-style classes with
/// ranges, and `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (choices, next) = parse_atom(&chars, i, pat);
            let (lo, hi, after) = parse_quantifier(&chars, next, pat);
            i = after;
            let count = lo + rng.gen_index(hi - lo + 1);
            for _ in 0..count {
                out.push(choices[rng.gen_index(choices.len())]);
            }
        }
        out
    }

    /// Parses one atom starting at `i`; returns its candidate characters
    /// and the index just past it.
    fn parse_atom(chars: &[char], i: usize, pat: &str) -> (Vec<char>, usize) {
        match chars[i] {
            '[' => {
                let mut choices = Vec::new();
                let mut j = i + 1;
                while j < chars.len() && chars[j] != ']' {
                    if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pat:?}");
                        for c in lo..=hi {
                            choices.push(c);
                        }
                        j += 3;
                    } else {
                        choices.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(j < chars.len(), "unclosed [ in pattern {pat:?}");
                assert!(!choices.is_empty(), "empty class in pattern {pat:?}");
                (choices, j + 1)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling \\ in pattern {pat:?}");
                (vec![chars[i + 1]], i + 2)
            }
            c => (vec![c], i + 1),
        }
    }

    /// Parses an optional quantifier at `i`; returns (min, max, next index).
    fn parse_quantifier(chars: &[char], i: usize, pat: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((l, h)) => (
                        l.trim().parse().expect("bad quantifier"),
                        h.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                assert!(lo <= hi, "bad quantifier in pattern {pat:?}");
                (lo, hi, close + 1)
            }
            _ => (1, 1, i),
        }
    }
}

/// Collection strategies (only `vec` is provided).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.gen_index(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests. Each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal test that generates `cases` inputs (from the
/// optional leading `#![proptest_config(...)]`) and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                let ($($pat,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
    )*};
}

/// Assertion macros; without shrinking these are plain `assert!`s.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let strat = crate::collection::vec((0u32..100, any::<bool>()), 0..20);
        let a = strat.generate(&mut crate::TestRng::for_case("t", 3));
        let b = strat.generate(&mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_generates_idents() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u32..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::new(11);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), c in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c, c);
        }
    }
}
