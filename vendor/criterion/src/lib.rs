//! Minimal stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim supports exactly the workspace's bench
//! usage — `Criterion::default().sample_size(..).warm_up_time(..)
//! .measurement_time(..)`, `benchmark_group` / `bench_function` /
//! `finish`, `Bencher::iter`, `black_box`, and `criterion_main!` — and
//! reports mean wall-clock time per iteration to stdout. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects settings and prints per-bench timings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the (approximate) warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the (approximate) total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing the parent settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up pass (untimed result).
        let warm_until = Instant::now() + self.criterion.warm_up_time;
        while Instant::now() < warm_until {
            f(&mut bencher);
            if bencher.iterations == 0 {
                break; // closure never called iter(); nothing to warm
            }
        }
        bencher.iterations = 0;
        bencher.elapsed = Duration::ZERO;
        let budget = Instant::now() + self.criterion.measurement_time;
        for _ in 0..self.criterion.sample_size {
            f(&mut bencher);
            if Instant::now() > budget {
                break;
            }
        }
        let mean = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: mean {:?} over {} iterations",
            self.name, id, mean, bencher.iterations
        );
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; times the hot loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one call of `f`, accumulating into the per-bench totals.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Declares `main` for a `harness = false` bench target: calls each listed
/// function in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Declares a group function running each target against a default
/// [`Criterion`]. Provided for API compatibility.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::from_secs(1));
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 3);
    }
}
